"""Tests for repro.exec.cluster: job files, submitters, rounds, shared cache."""

import json
import sys
import textwrap

import pytest

from repro.exec import SweepSpec, run_sweep
from repro.exec.cache import cache_salt
from repro.exec.cluster import (
    ClusterBackend,
    ClusterJob,
    FakeSubmitter,
    JOBFILE_SCHEMA_VERSION,
    JobFileError,
    SgeSubmitter,
    SlurmSubmitter,
    read_jobfile,
    read_results,
    result_path_for,
    run_jobs,
    worker_command,
    write_jobfile,
    write_results,
)
from repro.exec.cluster.pbs import PbsSubmitter
from repro.exec.cluster.worker import run_jobfile
from repro.exec.worker import execute_payload
from repro.registry import available_backends, available_submitters, get_submitter

SMALL_BASE = {"model": "3b", "num_gpus": 16, "total_context": 16 * 1024, "num_steps": 1}

SMALL_PAYLOADS = [
    {**SMALL_BASE, "dataset": "arxiv", "strategy": "te_cp"},
    {**SMALL_BASE, "dataset": "arxiv", "strategy": "zeppelin"},
]


def small_spec():
    return SweepSpec(
        base=SMALL_BASE,
        axes={"dataset": ("arxiv",), "strategy": ("te_cp", "zeppelin")},
    )


class TestJobFiles:
    def test_jobfile_round_trip(self, tmp_path):
        path = write_jobfile(
            tmp_path / "job.json", SMALL_PAYLOADS, cache_dir=tmp_path / "cache"
        )
        job = read_jobfile(path)
        assert job["payloads"] == SMALL_PAYLOADS
        assert job["cache_dir"] == str(tmp_path / "cache")

    def test_jobfile_salt_mismatch_raises(self, tmp_path):
        path = write_jobfile(tmp_path / "job.json", SMALL_PAYLOADS)
        doc = json.loads(path.read_text())
        doc["salt"] = "other-version/99"
        path.write_text(json.dumps(doc))
        with pytest.raises(JobFileError, match="code version"):
            read_jobfile(path)

    def test_jobfile_schema_mismatch_raises(self, tmp_path):
        path = write_jobfile(tmp_path / "job.json", SMALL_PAYLOADS)
        doc = json.loads(path.read_text())
        doc["schema"] = 99
        path.write_text(json.dumps(doc))
        with pytest.raises(JobFileError, match="schema"):
            read_jobfile(path)

    def test_jobfile_corrupt_raises(self, tmp_path):
        path = tmp_path / "job.json"
        path.write_text("{not json")
        with pytest.raises(JobFileError, match="cannot read"):
            read_jobfile(path)

    def test_result_round_trip_and_stats(self, tmp_path):
        path = write_results(
            tmp_path / "r.json", [{"a": 1}, {"b": 2}], {"executed": 2}
        )
        doc = read_results(path, expected=2)
        assert doc["results"] == [{"a": 1}, {"b": 2}]
        assert doc["stats"] == {"executed": 2}

    def test_result_missing_or_corrupt_is_none(self, tmp_path):
        assert read_results(tmp_path / "nope.json") is None
        path = tmp_path / "r.json"
        path.write_text("{truncated")
        assert read_results(path) is None

    def test_result_wrong_count_is_none(self, tmp_path):
        path = write_results(tmp_path / "r.json", [{"a": 1}])
        assert read_results(path, expected=2) is None
        assert read_results(path, expected=1) is not None

    def test_result_salt_mismatch_raises(self, tmp_path):
        path = write_results(tmp_path / "r.json", [{"a": 1}])
        doc = json.loads(path.read_text())
        doc["salt"] = "other-version/99"
        path.write_text(json.dumps(doc))
        with pytest.raises(JobFileError, match="code version"):
            read_results(path, expected=1)

    def test_result_path_for(self, tmp_path):
        assert result_path_for(tmp_path / "r01_j000.json") == (
            tmp_path / "r01_j000.result.json"
        )

    def test_no_tmp_files_left_behind(self, tmp_path):
        write_jobfile(tmp_path / "job.json", SMALL_PAYLOADS)
        write_results(tmp_path / "r.json", [{"a": 1}])
        assert sorted(p.name for p in tmp_path.iterdir()) == ["job.json", "r.json"]


class TestWorker:
    def test_run_jobfile_executes_and_caches(self, tmp_path):
        cache_dir = tmp_path / "cache"
        jobfile = write_jobfile(
            tmp_path / "job.json", SMALL_PAYLOADS, cache_dir=cache_dir
        )
        stats = run_jobfile(str(jobfile))
        assert stats == {"payloads": 2, "executed": 2, "cache_hits": 0}
        doc = read_results(result_path_for(jobfile), expected=2)
        expected = [execute_payload(p) for p in SMALL_PAYLOADS]
        assert doc["results"] == expected

        # A second worker over the same payloads hits the shared cache.
        again = tmp_path / "again.json"
        write_jobfile(again, SMALL_PAYLOADS, cache_dir=cache_dir)
        stats = run_jobfile(str(again))
        assert stats == {"payloads": 2, "executed": 0, "cache_hits": 2}
        assert read_results(result_path_for(again), expected=2)["results"] == expected

    def test_run_jobfile_without_cache_dir(self, tmp_path):
        jobfile = write_jobfile(tmp_path / "job.json", SMALL_PAYLOADS[:1])
        stats = run_jobfile(str(jobfile))
        assert stats == {"payloads": 1, "executed": 1, "cache_hits": 0}

    def test_worker_main_entrypoint(self, tmp_path, capsys):
        from repro.exec.cluster.worker import main

        jobfile = write_jobfile(tmp_path / "job.json", SMALL_PAYLOADS[:1])
        out = tmp_path / "custom.result.json"
        assert main([str(jobfile), "--out", str(out)]) == 0
        assert read_results(out, expected=1) is not None
        assert "1 executed" in capsys.readouterr().out


class TestSubmitterRegistry:
    def test_builtin_submitters_listed(self):
        assert set(available_submitters()) >= {"slurm", "sge", "fake", "pbs"}
        assert get_submitter("slurm").obj is SlurmSubmitter
        assert get_submitter("pbs").obj is PbsSubmitter
        assert get_submitter("fake").description

    def test_cluster_backend_registered(self):
        assert "cluster" in available_backends()


class _RecordingMixin:
    """Capture scheduler command lines instead of running them."""

    def __init__(self, *args, **kwargs):
        self.calls = []
        self.queue_alive = True
        super().__init__(*args, **kwargs)

    def _run(self, argv):
        self.calls.append(list(argv))
        tool = argv[0]
        if tool in ("sbatch", "qsub"):
            return "4242\n"
        if tool == "squeue":
            return "RUNNING\n" if self.queue_alive else "\n"
        if tool == "qstat" and not self.queue_alive:
            raise FileNotFoundError("job purged")
        return ""


class RecordingSlurm(_RecordingMixin, SlurmSubmitter):
    pass


class RecordingSge(_RecordingMixin, SgeSubmitter):
    pass


class RecordingPbs(_RecordingMixin, PbsSubmitter):
    pass


def _job(tmp_path, name="repro-r01-j000"):
    jobfile = tmp_path / "r01_j000.json"
    return ClusterJob(
        name=name,
        jobfile=jobfile,
        result_file=result_path_for(jobfile),
        log_path=jobfile.with_suffix(".log"),
        num_payloads=2,
    )


class TestSlurmTemplate:
    def test_submit_command_template(self, tmp_path):
        sub = RecordingSlurm(
            batch_options="--partition=long --mem=16G", workdir=tmp_path
        )
        job = _job(tmp_path)
        handle = sub.submit(job)
        assert handle == "4242"
        (argv,) = sub.calls
        assert argv[0:2] == ["sbatch", "--parsable"]
        assert f"--job-name={job.name}" in argv
        assert f"--output={job.log_path}" in argv
        assert f"--chdir={tmp_path}" in argv
        # --batch-options pass through verbatim, shell-split.
        assert "--partition=long" in argv and "--mem=16G" in argv
        # The wrapped command is the worker entry point over the job file.
        wrapped = argv[argv.index("--wrap") + 1]
        assert "repro.exec.cluster.worker" in wrapped
        assert str(job.jobfile) in wrapped

    def test_poll_and_cancel_commands(self, tmp_path):
        sub = RecordingSlurm()
        job = _job(tmp_path)
        handle = sub.submit(job)
        assert sub.is_running(handle) is True
        sub.queue_alive = False
        assert sub.is_running(handle) is False
        sub.cancel(handle)
        tools = [argv[0] for argv in sub.calls]
        assert tools == ["sbatch", "squeue", "squeue", "scancel"]
        assert sub.calls[-1] == ["scancel", "4242"]

    def test_parsable_cluster_suffix_stripped(self, tmp_path):
        class SuffixSlurm(RecordingSlurm):
            def _run(self, argv):
                super()._run(argv)
                return "4242;bigcluster\n"

        assert SuffixSlurm().submit(_job(tmp_path)) == "4242"


class TestSgeTemplate:
    def test_submit_command_template(self, tmp_path):
        sub = RecordingSge(batch_options="-l h_vmem=16G", workdir=tmp_path)
        job = _job(tmp_path)
        handle = sub.submit(job)
        assert handle == "4242"
        (argv,) = sub.calls
        assert argv[0:2] == ["qsub", "-terse"]
        # Binary mode, joined stdout/stderr at our log path.
        assert "-b" in argv and "-j" in argv
        assert str(job.log_path) in argv
        assert "-wd" in argv and str(tmp_path) in argv
        assert "-l" in argv and "h_vmem=16G" in argv
        # The worker command comes last, unwrapped.
        assert argv[-len(job.command()):] == job.command()

    def test_poll_and_cancel_commands(self, tmp_path):
        sub = RecordingSge()
        handle = sub.submit(_job(tmp_path))
        assert sub.is_running(handle) is True
        sub.queue_alive = False
        assert sub.is_running(handle) is False
        sub.cancel(handle)
        tools = [argv[0] for argv in sub.calls]
        assert tools == ["qsub", "qstat", "qstat", "qdel"]


class TestPbsTemplate:
    def test_submit_command_template(self, tmp_path):
        sub = RecordingPbs(batch_options="-q long -l mem=16gb", workdir=tmp_path)
        job = _job(tmp_path)
        handle = sub.submit(job)
        assert handle == "4242"
        (argv,) = sub.calls
        assert argv[0] == "qsub"
        assert argv[argv.index("-N") + 1] == job.name
        # Joined stdout/stderr at our log path.
        assert argv[argv.index("-j") + 1] == "oe"
        assert argv[argv.index("-o") + 1] == str(job.log_path)
        assert argv[argv.index("-d") + 1] == str(tmp_path)
        assert "-q" in argv and "long" in argv
        # Direct-mode separator, then the worker command verbatim and last.
        assert argv[-len(job.command()) - 1] == "--"
        assert argv[-len(job.command()):] == job.command()

    def test_workdir_omitted_without_one(self, tmp_path):
        sub = RecordingPbs()
        sub.submit(_job(tmp_path))
        (argv,) = sub.calls
        assert "-d" not in argv

    def test_poll_and_cancel_commands(self, tmp_path):
        sub = RecordingPbs()
        handle = sub.submit(_job(tmp_path))
        assert sub.is_running(handle) is True
        sub.queue_alive = False
        assert sub.is_running(handle) is False
        sub.cancel(handle)
        tools = [argv[0] for argv in sub.calls]
        assert tools == ["qsub", "qstat", "qstat", "qdel"]


class _ScriptJob(ClusterJob):
    """A job whose command is an arbitrary script (for driver tests)."""

    def __init__(self, *, script: str, **kwargs):
        super().__init__(**kwargs)
        self._script = script

    def command(self):
        return [sys.executable, "-c", self._script]


def _script_job(tmp_path, name, script, num_payloads=0):
    jobfile = tmp_path / f"{name}.json"
    return _ScriptJob(
        name=name,
        jobfile=jobfile,
        result_file=result_path_for(jobfile),
        log_path=jobfile.with_suffix(".log"),
        num_payloads=num_payloads,
        script=script,
    )


def _result_script(path):
    """A fast worker stand-in: write a valid empty result file at ``path``.

    Avoids importing ``repro`` in the subprocess by baking the current salt
    into a plain JSON write.
    """
    doc = {
        "kind": "repro-cluster-result",
        "schema": JOBFILE_SCHEMA_VERSION,
        "salt": cache_salt(),
        "results": [],
        "stats": {},
    }
    return f"import json; json.dump({doc!r}, open({str(path)!r}, 'w'))"


class TestRunJobsDriver:
    def test_timeout_cancels_and_bounded_resubmission(self, tmp_path):
        job = _script_job(tmp_path, "sleeper", "import time; time.sleep(60)")
        outcome = run_jobs(
            FakeSubmitter(),
            [job],
            timeout_s=0.3,
            poll_interval_s=0.02,
            max_resubmits=1,
        )
        assert outcome["completed"] == []
        assert outcome["failed"] == [job]
        assert outcome["resubmissions"] == 1  # retried once, then gave up
        assert "timed out" in job.last_error

    def test_failed_job_is_resubmitted_then_succeeds(self, tmp_path):
        marker = tmp_path / "attempted"
        script = textwrap.dedent(
            f"""
            import pathlib, sys
            marker = pathlib.Path({str(marker)!r})
            if not marker.exists():
                marker.touch()
                sys.exit(1)  # first attempt crashes
            {_result_script(tmp_path / "flaky.result.json")}
            """
        )
        job = _script_job(tmp_path, "flaky", script)
        outcome = run_jobs(
            FakeSubmitter(), [job], poll_interval_s=0.02, max_resubmits=2
        )
        assert outcome["completed"] == [job]
        assert outcome["failed"] == []
        assert outcome["resubmissions"] == 1
        assert job.result == {"results": [], "stats": {}}

    def test_exhausted_resubmissions_reports_log_tail(self, tmp_path):
        script = "import sys; print('boom diagnostics'); sys.exit(3)"
        job = _script_job(tmp_path, "dead", script)
        outcome = run_jobs(
            FakeSubmitter(), [job], poll_interval_s=0.02, max_resubmits=1
        )
        assert outcome["failed"] == [job]
        assert "without writing a result" in job.last_error
        assert "boom diagnostics" in job.last_error

    def test_fake_submitter_bounds_concurrency(self, tmp_path):
        sub = FakeSubmitter(max_concurrent=2)
        jobs = [
            _script_job(tmp_path, f"c{i}", "import time; time.sleep(5)")
            for i in range(5)
        ]
        handles = [sub.submit(job) for job in jobs]
        assert len(sub._running) <= 2
        assert len(sub._queue) >= 3  # the rest are held pending
        for handle in handles:
            sub.cancel(handle)
        assert sub._queue == [] and sub._running == []

    def test_run_jobs_completes_a_queued_batch(self, tmp_path):
        sub = FakeSubmitter(max_concurrent=2)
        jobs = [
            _script_job(
                tmp_path, f"b{i}", _result_script(tmp_path / f"b{i}.result.json")
            )
            for i in range(5)
        ]
        outcome = run_jobs(sub, jobs, poll_interval_s=0.02)
        assert len(outcome["completed"]) == 5
        assert outcome["resubmissions"] == 0


class TestClusterBackendEndToEnd:
    def test_matches_serial_and_records_rounds(self, tmp_path):
        spec = small_spec()
        serial = run_sweep(spec)
        cluster = run_sweep(
            spec,
            backend="cluster",
            jobs=2,
            backend_options={
                "batch_system": "fake",
                "workdir": tmp_path / "work",
                "poll_interval_s": 0.02,
            },
        )
        assert cluster.to_dict()["results"] == serial.to_dict()["results"]
        meta = cluster.meta
        assert meta["backend"] == "cluster"
        assert meta["batch_system"] == "fake"
        assert meta["workdir"] == str(tmp_path / "work")
        (round1,) = meta["rounds"]
        assert round1["jobs"] == 2
        assert round1["payloads"] == 2
        assert round1["completed_jobs"] == 2
        assert round1["worker_executed"] == 2
        assert "wall_time_s" not in round1  # wall clock lives in meta["timing"]
        (round_wall,) = meta["timing"]["round_wall_times_s"]
        assert round_wall > 0
        # Explicit workdirs are kept: job, result and log files remain.
        assert list((tmp_path / "work").glob("r01_j*.json"))

    def test_shared_point_cache_across_maps(self, tmp_path):
        spec = small_spec()
        options = {
            "batch_system": "fake",
            "workdir": tmp_path / "work",
            "cache_dir": tmp_path / "point_cache",
            "poll_interval_s": 0.02,
        }
        cold = run_sweep(spec, backend="cluster", jobs=2, backend_options=options)
        warm = run_sweep(spec, backend="cluster", jobs=2, backend_options=options)
        assert cold.meta["rounds"][0]["worker_executed"] == 2
        assert warm.meta["rounds"][0]["worker_executed"] == 0
        assert warm.meta["rounds"][0]["worker_cache_hits"] == 2
        assert warm.to_dict()["results"] == cold.to_dict()["results"]

    def test_failed_jobs_resplit_over_shrinking_rounds(self, tmp_path, monkeypatch):
        # A wrapper that crashes the first execution of every round-1 job
        # file before the worker writes its result; later executions run the
        # real worker.  With max_resubmits=0 both round-1 jobs fail, so the
        # payloads carry over to a second round with a single, larger job.
        wrapper = tmp_path / "flaky_worker.py"
        wrapper.write_text(
            textwrap.dedent(
                """
                import pathlib, runpy, sys
                jobfile = pathlib.Path(sys.argv[1])
                marker = jobfile.with_suffix(".crashed")
                if "r01_" in jobfile.name and not marker.exists():
                    marker.touch()
                    sys.exit(1)
                runpy.run_module("repro.exec.cluster.worker", run_name="__main__")
                """
            )
        )
        import repro.exec.cluster.submitters as submitters_mod

        real_command = submitters_mod.worker_command

        def wrapped_command(jobfile, result_file=None):
            argv = real_command(jobfile, result_file)
            return [argv[0], str(wrapper)] + argv[3:]

        monkeypatch.setattr(submitters_mod, "worker_command", wrapped_command)

        spec = small_spec()
        backend = ClusterBackend(
            jobs=2,
            batch_system="fake",
            workdir=tmp_path / "work",
            poll_interval_s=0.02,
            max_resubmits=0,  # force failures into the next round
        )
        cluster = run_sweep(spec, backend=backend)
        serial = run_sweep(spec)
        assert cluster.to_dict()["results"] == serial.to_dict()["results"]
        rounds = cluster.meta["rounds"]
        assert len(rounds) == 2
        assert rounds[0]["failed_jobs"] == 2
        # partis discipline: the retry round uses fewer, larger jobs.
        assert rounds[1]["jobs"] == 1
        assert rounds[1]["payloads"] == 2
        assert rounds[1]["completed_jobs"] == 1

    def test_unrecoverable_failure_raises_with_diagnostics(
        self, tmp_path, monkeypatch
    ):
        import repro.exec.cluster.submitters as submitters_mod

        dead = [sys.executable, "-c", "import sys; sys.exit(9)"]
        monkeypatch.setattr(
            submitters_mod, "worker_command", lambda *a, **kw: list(dead)
        )
        backend = ClusterBackend(
            jobs=1,
            batch_system="fake",
            workdir=tmp_path / "work",
            poll_interval_s=0.02,
            max_resubmits=0,
        )
        with pytest.raises(RuntimeError, match="cluster sweep failed"):
            run_sweep(small_spec(), backend=backend)

    def test_empty_payload_list(self):
        backend = ClusterBackend(jobs=4, batch_system="fake")
        assert backend.map([], execute_payload) == []
        assert backend.observability() == {}

    def test_backend_options_with_instance_rejected(self):
        from repro.exec.sweep import resolve_backend

        with pytest.raises(ValueError, match="already-constructed"):
            resolve_backend(
                ClusterBackend(jobs=1), options={"batch_system": "fake"}
            )


class TestAdaptiveJobs:
    """Retry-round sizing from observed per-point wall time."""

    def test_no_signal_falls_back_to_fixed_shrink(self):
        from repro.exec.cluster.backend import SHRINK_FACTOR, _adaptive_jobs

        expected = max(1, min(49, int(50 / SHRINK_FACTOR)))
        assert _adaptive_jobs(100, 0, 0, 0.0, 50) == expected
        assert _adaptive_jobs(100, 0, 5, 2.0, 50) == expected  # nothing done
        assert _adaptive_jobs(100, 50, 10, 0.0, 50) == expected  # no wall time
        assert _adaptive_jobs(3, 0, 0, 0.0, 2) == 1

    def test_sized_from_observed_per_point_time(self):
        from repro.exec.cluster.backend import _adaptive_jobs

        # 50 payloads over 10 jobs in 2s -> 0.4 s/point; target job length
        # 1.6 * 2s = 3.2s; 100 pending points -> 12 jobs, clamped to 9
        # (rounds must strictly shrink).
        assert _adaptive_jobs(100, 50, 10, 2.0, 10) == 9
        # Same rate but only 16 pending -> 2 jobs: the estimate, not the
        # fixed divisor, drives the size.
        assert _adaptive_jobs(16, 50, 10, 2.0, 10) == 2

    def test_fast_points_never_drop_below_one_job(self):
        from repro.exec.cluster.backend import _adaptive_jobs

        assert _adaptive_jobs(4, 96, 12, 1.0, 12) == 1

    def test_min_job_wall_floor_bounds_tiny_rounds(self):
        from repro.exec.cluster.backend import MIN_JOB_WALL_S, _adaptive_jobs

        # A 0.1s round would target 0.16s jobs without the floor; with it
        # the target is MIN_JOB_WALL_S, so 100 points at 0.1 s/point size
        # to 10 jobs -> clamped to 9.
        assert MIN_JOB_WALL_S == 1.0
        assert _adaptive_jobs(100, 10, 10, 0.1, 10) == 9

    def test_always_strictly_shrinks(self):
        from repro.exec.cluster.backend import _adaptive_jobs

        for prev in range(2, 60, 7):
            for wall in (0.0, 0.5, 10.0):
                jobs = _adaptive_jobs(1000, 10, prev, wall, prev)
                assert 1 <= jobs < prev


class TestWorkerCommandEnv:
    def test_worker_command_uses_module_entrypoint(self, tmp_path):
        argv = worker_command(tmp_path / "j.json", tmp_path / "r.json")
        assert argv[0] == sys.executable
        assert argv[1:3] == ["-m", "repro.exec.cluster.worker"]
        assert "--out" in argv

    def test_fake_submitter_env_exports_package_root(self):
        import os
        import pathlib

        import repro

        env = FakeSubmitter()._worker_env()
        pkg_root = str(pathlib.Path(repro.__file__).resolve().parent.parent)
        assert env["PYTHONPATH"].split(os.pathsep)[0] == pkg_root


class TestClusterAcceptance:
    """The issue's acceptance demo: >=10k points, 50 jobs, fake submitter.

    The grid carries a 2500-value inert ``rep`` tag axis over 4 real
    execution identities, so the run exercises 10,000 payloads end to end
    (job files, 50 submitted workers, result collection) while the shared
    point cache keeps the simulation cost near 4 points — exactly the
    cache-amortised fan-out the subsystem exists to provide.
    """

    def test_10k_points_50_jobs_byte_identical_and_warm_zero(self, tmp_path):
        axes = {
            "dataset": ("arxiv", "github"),
            "strategy": ("te_cp", "zeppelin"),
            "rep": tuple(range(2500)),
        }
        spec = SweepSpec(base=SMALL_BASE, axes=axes)
        assert len(spec.points()) == 10_000

        cache_dir = tmp_path / "sweep_cache"
        options = {
            "batch_system": "fake",
            "workdir": tmp_path / "work",
            "cache_dir": tmp_path / "point_cache",
            "poll_interval_s": 0.05,
        }
        # dedup=False: the fan-out itself is under test here, so ship all
        # 10k payloads instead of letting the driver collapse them to the
        # 4 unique execution identities.
        cold = run_sweep(
            spec, backend="cluster", jobs=50, cache=cache_dir,
            backend_options=options, dedup=False,
        )
        assert cold.meta["executed_points"] == 10_000
        assert cold.meta["deduped"] == 0
        assert sum(r["jobs"] for r in cold.meta["rounds"]) == 50
        # The shared point cache collapses 10k payloads to ~4 simulations
        # (plus at most a handful of racy duplicates across workers).
        executed = sum(r["worker_executed"] for r in cold.meta["rounds"])
        hits = sum(r["worker_cache_hits"] for r in cold.meta["rounds"])
        assert executed + hits == 10_000
        assert executed < 250

        # Byte-identical to the serial backend: every point's result equals
        # the serial result of its unique execution identity.
        unique = SweepSpec(
            base=SMALL_BASE,
            axes={"dataset": axes["dataset"], "strategy": axes["strategy"]},
        )
        serial = run_sweep(unique)
        by_identity = {
            (p["dataset"], p["strategy"]): r.to_dict() for p, r in serial
        }
        for point, result in cold:
            assert result.to_dict() == by_identity[
                (point["dataset"], point["strategy"])
            ]

        # Warm second run: every point is a driver-cache hit, nothing runs.
        warm = run_sweep(
            spec, backend="cluster", jobs=50, cache=cache_dir,
            backend_options=options,
        )
        assert warm.meta["cache_hits"] == 10_000
        assert warm.meta["executed_points"] == 0
        assert warm.to_dict()["results"] == cold.to_dict()["results"]
