"""Tests for the Chrome-trace exporter and the `repro trace` subcommand."""

import json

import pytest

from repro.core.plan import TaskKind
from repro.sim.trace import Trace, TraceSpan


@pytest.fixture
def trace():
    t = Trace()
    t.add(TraceSpan(0, "attn[0]", TaskKind.ATTENTION, rank=0, start_s=0.0, end_s=0.5))
    t.add(TraceSpan(1, "send[0>1]", TaskKind.INTER_COMM, rank=1, start_s=0.5, end_s=0.75))
    t.add(
        TraceSpan(
            2, "attn[1]", TaskKind.ATTENTION, rank=1, start_s=0.75, end_s=0.9, aborted=True
        )
    )
    return t


class TestChromeExport:
    def test_complete_events_in_microseconds(self, trace):
        payload = trace.to_chrome_dict()
        assert payload["displayTimeUnit"] == "ms"
        events = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        assert len(events) == 3
        first = events[0]
        assert first["name"] == "attn[0]"
        assert first["cat"] == "attention"
        assert first["ts"] == 0.0
        assert first["dur"] == pytest.approx(0.5e6)
        assert first["tid"] == 0 and first["pid"] == 0

    def test_thread_metadata_per_rank(self, trace):
        payload = trace.to_chrome_dict(process_name="my sim")
        meta = [e for e in payload["traceEvents"] if e["ph"] == "M"]
        names = {e["args"]["name"] for e in meta}
        assert {"my sim", "rank 0", "rank 1"} <= names

    def test_aborted_spans_flagged(self, trace):
        payload = trace.to_chrome_dict()
        aborted = [
            e
            for e in payload["traceEvents"]
            if e["ph"] == "X" and e["args"]["aborted"]
        ]
        assert len(aborted) == 1
        assert aborted[0]["cname"] == "terrible"

    def test_json_round_trips_through_loads(self, trace):
        payload = json.loads(trace.to_chrome_json(indent=2))
        assert "traceEvents" in payload


class TestTraceCli:
    def test_writes_chrome_json_file(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "timeline.json"
        code = main(
            [
                "trace", "zeppelin",
                "--model", "3b", "--context-k", "16", "--steps", "1",
                "--out", str(out),
            ]
        )
        assert code == 0
        payload = json.loads(out.read_text())
        events = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        assert events and all("ts" in e and "dur" in e for e in events)
        assert "perfetto" in capsys.readouterr().out

    def test_prints_json_without_out(self, capsys):
        from repro.cli import main

        code = main(
            ["trace", "te_cp", "--model", "3b", "--context-k", "16", "--steps", "1"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["traceEvents"]

    def test_bad_config_exits_2(self, capsys):
        from repro.cli import CONFIG_ERROR_EXIT_CODE, main

        code = main(["trace", "zeppelin", "--gpus", "12"])
        assert code == CONFIG_ERROR_EXIT_CODE
        assert "multiple of 8" in capsys.readouterr().err
