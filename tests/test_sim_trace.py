"""Tests for trace recording and timeline accounting."""

import json

import pytest

from repro.core.plan import ExecutionPlan, TaskKind
from repro.sim.engine import simulate
from repro.sim.events import ResourceEvent
from repro.sim.trace import Trace, TraceSpan, summarize_trace


def span(task_id, kind, rank, start, end, name="t"):
    return TraceSpan(task_id=task_id, name=name, kind=kind, rank=rank, start_s=start, end_s=end)


class TestTrace:
    def test_makespan(self):
        trace = Trace()
        trace.add(span(0, TaskKind.ATTENTION, 0, 0.0, 1.0))
        trace.add(span(1, TaskKind.LINEAR, 0, 1.0, 3.0))
        assert trace.makespan_s == 3.0

    def test_busy_time_merges_overlaps(self):
        trace = Trace()
        trace.add(span(0, TaskKind.ATTENTION, 0, 0.0, 2.0))
        trace.add(span(1, TaskKind.ATTENTION, 0, 1.0, 3.0))
        assert trace.busy_time(0) == pytest.approx(3.0)

    def test_busy_time_filters_by_kind(self):
        trace = Trace()
        trace.add(span(0, TaskKind.ATTENTION, 0, 0.0, 1.0))
        trace.add(span(1, TaskKind.INTER_COMM, 0, 2.0, 5.0))
        assert trace.busy_time(0, kinds={TaskKind.ATTENTION}) == pytest.approx(1.0)

    def test_exposed_communication(self):
        trace = Trace()
        # Compute from 0-2, comm from 1-4: 2 seconds of comm are exposed.
        trace.add(span(0, TaskKind.ATTENTION, 0, 0.0, 2.0))
        trace.add(span(1, TaskKind.INTER_COMM, 0, 1.0, 4.0))
        assert trace.communication_exposed_s(0) == pytest.approx(2.0)

    def test_fully_hidden_communication(self):
        trace = Trace()
        trace.add(span(0, TaskKind.ATTENTION, 0, 0.0, 5.0))
        trace.add(span(1, TaskKind.INTRA_COMM, 0, 1.0, 2.0))
        assert trace.communication_exposed_s(0) == pytest.approx(0.0)

    def test_no_communication(self):
        trace = Trace()
        trace.add(span(0, TaskKind.ATTENTION, 0, 0.0, 5.0))
        assert trace.communication_exposed_s(0) == 0.0

    def test_spans_for_rank_sorted(self):
        trace = Trace()
        trace.add(span(0, TaskKind.ATTENTION, 1, 2.0, 3.0))
        trace.add(span(1, TaskKind.ATTENTION, 1, 0.0, 1.0))
        starts = [s.start_s for s in trace.spans_for_rank(1)]
        assert starts == sorted(starts)

    def test_time_by_kind(self):
        trace = Trace()
        trace.add(span(0, TaskKind.ATTENTION, 0, 0.0, 1.0))
        trace.add(span(1, TaskKind.ATTENTION, 1, 0.0, 2.0))
        trace.add(span(2, TaskKind.REMAP, 0, 0.0, 0.5))
        by_kind = trace.time_by_kind()
        assert by_kind[TaskKind.ATTENTION] == pytest.approx(3.0)
        assert by_kind[TaskKind.REMAP] == pytest.approx(0.5)


class TestTraceExport:
    def test_span_dict_round_trip(self):
        original = span(3, TaskKind.REMAP, 1, 0.5, 2.0, name="remap:0->1")
        restored = TraceSpan.from_dict(original.to_dict())
        assert restored == original

    def test_trace_json_round_trip(self):
        trace = Trace()
        trace.add(span(0, TaskKind.ATTENTION, 0, 0.0, 1.0))
        trace.add(span(1, TaskKind.INTER_COMM, 1, 0.5, 2.5))
        restored = Trace.from_json(trace.to_json())
        assert restored.spans == trace.spans
        assert restored.makespan_s == trace.makespan_s

    def test_round_trip_preserves_aborted_flag(self):
        trace = Trace()
        trace.add(
            TraceSpan(
                task_id=0, name="t", kind=TaskKind.LINEAR, rank=2,
                start_s=0.0, end_s=1.5, aborted=True,
            )
        )
        restored = Trace.from_json(trace.to_json())
        assert restored.spans[0].aborted
        assert restored.aborted_spans == trace.aborted_spans

    def test_missing_aborted_key_defaults_false(self):
        # Traces exported before the dynamics subsystem lack the flag.
        row = span(0, TaskKind.ATTENTION, 0, 0.0, 1.0).to_dict()
        del row["aborted"]
        assert not TraceSpan.from_dict(row).aborted

    def test_simulated_abort_survives_export(self):
        """End to end: a failure mid-plan exports and re-imports faithfully."""
        plan = ExecutionPlan()
        a = plan.add("a", TaskKind.ATTENTION, 2.0, ("compute:0",), rank=0)
        plan.add("b", TaskKind.LINEAR, 1.0, ("compute:0",), deps=[a], rank=0)
        plan.add("c", TaskKind.ATTENTION, 0.5, ("compute:1",), rank=1)
        result = simulate(plan, events=[ResourceEvent(1.0, ("compute:0",), None)])
        assert result.failed
        text = result.trace.to_json(indent=2)
        json.loads(text)  # valid JSON
        restored = Trace.from_json(text)
        assert restored.spans == result.trace.spans
        aborted = restored.aborted_spans
        assert [s.task_id for s in aborted] == [0]
        assert aborted[0].end_s == pytest.approx(1.0)
        # Completed work on the surviving rank round-trips too.
        complete = [s for s in restored.spans if not s.aborted]
        assert [s.task_id for s in complete] == [2]


class TestSummarizeTrace:
    def test_summary_from_simulated_plan(self):
        plan = ExecutionPlan()
        a = plan.add("attn", TaskKind.ATTENTION, 2.0, ("compute:0",), rank=0)
        plan.add("comm", TaskKind.INTER_COMM, 1.0, ("nic:0:tx",), deps=[a], rank=0)
        plan.add("attn1", TaskKind.ATTENTION, 1.5, ("compute:1",), rank=1)
        result = simulate(plan)
        summary = summarize_trace(result.trace)
        assert summary["makespan_s"] == pytest.approx(3.0)
        assert summary["total_attention_s"] == pytest.approx(3.5)
        assert summary["total_inter_comm_s"] == pytest.approx(1.0)
        assert summary["max_rank_compute_s"] == pytest.approx(2.0)

    def test_summary_of_empty_trace(self):
        summary = summarize_trace(Trace())
        assert summary["makespan_s"] == 0.0
        assert "max_rank_compute_s" not in summary
