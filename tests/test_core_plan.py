"""Tests for the execution-plan task graph."""

import pytest

from repro.core.plan import ExecutionPlan, TaskKind


class TestPlanConstruction:
    def test_ids_are_sequential(self):
        plan = ExecutionPlan()
        a = plan.add("a", TaskKind.ATTENTION, 1.0, ("compute:0",))
        b = plan.add("b", TaskKind.LINEAR, 2.0, ("compute:0",), deps=[a])
        assert (a, b) == (0, 1)
        assert plan.num_tasks == 2

    def test_forward_dependency_rejected(self):
        plan = ExecutionPlan()
        with pytest.raises(ValueError):
            plan.add("bad", TaskKind.OTHER, 1.0, (), deps=[0])

    def test_negative_duration_rejected(self):
        plan = ExecutionPlan()
        with pytest.raises(ValueError):
            plan.add("bad", TaskKind.OTHER, -1.0, ())

    def test_validate_passes_for_well_formed_plan(self):
        plan = ExecutionPlan()
        a = plan.add("a", TaskKind.ATTENTION, 1.0, ("compute:0",))
        plan.add("b", TaskKind.INTER_COMM, 0.5, ("nic:0:tx",), deps=[a])
        plan.validate()

    def test_total_duration_by_kind(self):
        plan = ExecutionPlan()
        plan.add("a", TaskKind.ATTENTION, 1.0, ())
        plan.add("b", TaskKind.ATTENTION, 2.0, ())
        plan.add("c", TaskKind.LINEAR, 0.5, ())
        totals = plan.total_duration_by_kind()
        assert totals[TaskKind.ATTENTION] == pytest.approx(3.0)
        assert totals[TaskKind.LINEAR] == pytest.approx(0.5)

    def test_tasks_for_rank(self):
        plan = ExecutionPlan()
        plan.add("a", TaskKind.ATTENTION, 1.0, (), rank=3)
        plan.add("b", TaskKind.ATTENTION, 1.0, (), rank=5)
        plan.add("c", TaskKind.LINEAR, 1.0, (), rank=3)
        assert [t.name for t in plan.tasks_for_rank(3)] == ["a", "c"]


class TestCriticalPath:
    def test_chain_sums_durations(self):
        plan = ExecutionPlan()
        a = plan.add("a", TaskKind.OTHER, 1.0, ())
        b = plan.add("b", TaskKind.OTHER, 2.0, (), deps=[a])
        plan.add("c", TaskKind.OTHER, 3.0, (), deps=[b])
        assert plan.critical_path_lower_bound() == pytest.approx(6.0)

    def test_parallel_branches_take_the_longest(self):
        plan = ExecutionPlan()
        a = plan.add("a", TaskKind.OTHER, 1.0, ())
        plan.add("b", TaskKind.OTHER, 5.0, (), deps=[a])
        plan.add("c", TaskKind.OTHER, 2.0, (), deps=[a])
        assert plan.critical_path_lower_bound() == pytest.approx(6.0)

    def test_empty_plan(self):
        assert ExecutionPlan().critical_path_lower_bound() == 0.0


class TestResourceNames:
    def test_compute_resource(self):
        assert ExecutionPlan.compute_resource(7) == "compute:7"

    def test_nic_and_nvlink_resources(self):
        assert ExecutionPlan.nic_resource(3, "tx") == "nic:3:tx"
        assert ExecutionPlan.nvlink_resource(2, "rx") == "nvl:2:rx"

    def test_invalid_direction_rejected(self):
        with pytest.raises(ValueError):
            ExecutionPlan.nic_resource(0, "sideways")
        with pytest.raises(ValueError):
            ExecutionPlan.nvlink_resource(0, "up")


class TestTaskKind:
    def test_communication_classification(self):
        assert TaskKind.INTER_COMM.is_communication
        assert TaskKind.DISPATCH.is_communication
        assert TaskKind.REMAP.is_communication
        assert not TaskKind.ATTENTION.is_communication
        assert not TaskKind.LINEAR.is_communication
