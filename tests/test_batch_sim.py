"""The batched lane-parallel kernel: bit-identical to sequential simulation.

:func:`repro.sim.batch.simulate_batch` promises results byte-identical to N
sequential :meth:`Simulator.run` calls, whichever internal path a lane takes
(schedule replay, the lean recording loop, or the engine fallback).  These
tests compare the kernel against the engine on random DAGs (dyadic
durations, so ties are exact — the regime where replay verification has to
be perfect), on every registered strategy's real plans, and through the
producers that funnel into it (`simulate_iterations`,
`simulate_iteration_states`, `measure_throughput`).  Lane dedup, structure
grouping, `structure_key` invalidation and the `batch_simulate` telemetry
are pinned down alongside.
"""

import dataclasses
import random

import pytest

from repro.core.plan import ExecutionPlan, TaskKind
from repro.obs.core import Telemetry
from repro.obs.export import ListSink
from repro.sim.batch import Lane, SimRequest, simulate_batch, simulate_many
from repro.sim.compile import compile_plan
from repro.sim.engine import Simulator
from repro.sim.events import ResourceEvent

_KINDS = list(TaskKind)


def _random_plan(rng: random.Random) -> ExecutionPlan:
    """A random DAG with shared resources and dyadic durations (incl. zero)."""
    plan = ExecutionPlan()
    num_tasks = rng.randint(1, 40)
    resources = [f"res:{i}" for i in range(rng.randint(1, 6))]
    for tid in range(num_tasks):
        num_deps = rng.randint(0, min(3, tid))
        deps = rng.sample(range(tid), num_deps) if num_deps else []
        if rng.random() < 0.1:
            held = ()  # zero-cost barrier
        else:
            held = tuple(rng.sample(resources, rng.randint(1, min(2, len(resources)))))
        plan.add(
            f"t{tid}",
            rng.choice(_KINDS),
            rng.randint(0, 64) / 64.0,
            held,
            deps=deps,
            rank=rng.randint(-1, 3),
            priority=rng.randint(0, 4),
        )
    return plan


def _duration_lanes(rng: random.Random, base: tuple[float, ...]) -> list[Lane]:
    """Duration variants of one structure: identical, scaled, jittered, shuffled.

    All arithmetic stays dyadic so same-instant ties either survive a
    variant exactly or break cleanly — both replay-verification regimes.
    """
    lanes = [Lane()]  # structure's own durations
    lanes.append(Lane(durations=base))  # explicitly identical (dedup bait)
    for scale in (0.5, 1.5, 2.0, 0.25):
        lanes.append(Lane(durations=tuple(d * scale for d in base)))
    for _ in range(4):  # per-task dyadic jitter: regroups ties
        lanes.append(
            Lane(
                durations=tuple(
                    d + rng.randint(0, 16) / 64.0 for d in base
                )
            )
        )
    shuffled = list(base)
    rng.shuffle(shuffled)
    lanes.append(Lane(durations=tuple(shuffled)))
    return lanes


def _reference(cp, lane: Lane, record_trace: bool = False):
    """What the lane should equal: the engine, run sequentially."""
    lane_cp = cp
    if lane.durations is not None and lane.durations is not cp.durations:
        lane_cp = dataclasses.replace(cp, durations=lane.durations)
    return Simulator(record_trace=record_trace).run(
        lane_cp, events=lane.events, start_time_s=lane.start_time_s
    )


def _assert_identical(new, old, context):
    assert new.makespan_s == old.makespan_s, context
    assert new.start_times == old.start_times, context
    assert new.end_times == old.end_times, context
    assert new.aborted_task_ids == old.aborted_task_ids, context
    assert new.stranded_task_ids == old.stranded_task_ids, context
    assert new.failed_resources == old.failed_resources, context
    assert new.trace.spans == old.trace.spans, context


class TestRandomDagEquivalence:
    @pytest.mark.parametrize("seed", range(40))
    def test_duration_lanes_bit_identical(self, seed):
        rng = random.Random(seed)
        plan = _random_plan(rng)
        cp = compile_plan(plan)
        lanes = _duration_lanes(rng, cp.durations)
        results = simulate_batch(cp, lanes)
        for i, (lane, result) in enumerate(zip(lanes, results)):
            _assert_identical(result, _reference(cp, lane), (seed, i))

    @pytest.mark.parametrize("seed", range(20))
    def test_factor_event_lanes_bit_identical(self, seed):
        """Initial speed factors (the lean path's dynamic case)."""
        rng = random.Random(2000 + seed)
        plan = _random_plan(rng)
        cp = compile_plan(plan)
        names = sorted({r for t in plan.tasks for r in t.resources})
        lanes = [Lane()]
        for _ in range(6):
            if not names:
                break
            targets = tuple(rng.sample(names, rng.randint(1, min(2, len(names)))))
            factor = 2.0 ** rng.randint(-3, 1)
            lanes.append(Lane(events=(ResourceEvent(0.0, targets, factor),)))
        results = simulate_batch(cp, lanes)
        for i, (lane, result) in enumerate(zip(lanes, results)):
            _assert_identical(result, _reference(cp, lane), (seed, i))

    @pytest.mark.parametrize("seed", range(20))
    def test_engine_fallback_lanes_bit_identical(self, seed):
        """Timed perturbations and failures delegate to the real engine."""
        rng = random.Random(3000 + seed)
        plan = _random_plan(rng)
        cp = compile_plan(plan)
        names = sorted({r for t in plan.tasks for r in t.resources})
        lanes = [Lane()]
        for _ in range(4):
            if not names:
                break
            targets = tuple(rng.sample(names, 1))
            time_s = rng.randint(1, 640) / 64.0
            factor = None if rng.random() < 0.3 else 2.0 ** rng.randint(-3, 0)
            lanes.append(Lane(events=(ResourceEvent(time_s, targets, factor),)))
        # Mixed batch: lean lanes and fallback lanes in one call.
        lanes.append(Lane(durations=tuple(d * 0.5 for d in cp.durations)))
        results = simulate_batch(cp, lanes)
        for i, (lane, result) in enumerate(zip(lanes, results)):
            _assert_identical(result, _reference(cp, lane), (seed, i))

    @pytest.mark.parametrize("seed", range(10))
    def test_record_trace_lanes_bit_identical(self, seed):
        rng = random.Random(4000 + seed)
        plan = _random_plan(rng)
        cp = compile_plan(plan)
        lanes = [Lane(), Lane(durations=tuple(d * 2.0 for d in cp.durations))]
        results = simulate_batch(cp, lanes, record_trace=True)
        for i, (lane, result) in enumerate(zip(lanes, results)):
            _assert_identical(result, _reference(cp, lane, record_trace=True), i)
            assert result.trace.spans  # the trace actually recorded

    def test_start_time_offset(self):
        rng = random.Random(77)
        plan = _random_plan(rng)
        cp = compile_plan(plan)
        lanes = [
            Lane(start_time_s=4.0),
            Lane(
                durations=tuple(d * 0.5 for d in cp.durations),
                events=(ResourceEvent(0.0, (plan.tasks[0].resources or ("res:0",))[:1], 0.5),),
                start_time_s=4.0,
            ),
        ]
        results = simulate_batch(cp, lanes)
        for i, (lane, result) in enumerate(zip(lanes, results)):
            _assert_identical(result, _reference(cp, lane), i)


class TestErrorParity:
    def test_deadlock_at_t0_raises(self):
        """Same guard as the engine: a corrupted plan nothing can start."""
        from repro.core.plan import Task
        from repro.sim.compile import CompiledPlan

        plan = ExecutionPlan(
            tasks=[
                Task(
                    task_id=0,
                    name="t",
                    kind=TaskKind.OTHER,
                    duration_s=1.0,
                    resources=("r",),
                )
            ]
        )
        corrupt = CompiledPlan(
            plan=plan,
            num_tasks=1,
            resource_names=("r",),
            resource_index={"r": 0},
            durations=(1.0,),
            task_resources=((0,),),
            dispatch_keys=((0, 0),),
            dep_counts=(1,),  # never satisfied: nothing can ever start
            dependents_indptr=(0, 0),
            dependents_ids=(),
            initial_ready=(),
        )
        with pytest.raises(RuntimeError, match="deadlock at time 0"):
            simulate_batch(corrupt, [Lane()])

    def test_unsatisfiable_dependency_raises(self):
        plan = ExecutionPlan()
        a = plan.add("a", TaskKind.OTHER, 1.0, ("r",))
        plan.add("b", TaskKind.OTHER, 1.0, ("r",), deps=[a])
        cp = compile_plan(plan)
        broken = dataclasses.replace(cp, dep_counts=(0, 2))
        with pytest.raises(RuntimeError, match="unsatisfiable dependency"):
            simulate_batch(broken, [Lane()])

    def test_empty_plan(self):
        cp = compile_plan(ExecutionPlan())
        results = simulate_batch(cp, [Lane(), Lane()])
        for result in results:
            assert result.makespan_s == 0.0
            assert result.end_times == {}


class TestLaneDedup:
    def test_identical_lanes_collapse_to_one_result(self):
        rng = random.Random(5)
        plan = _random_plan(rng)
        cp = compile_plan(plan)
        sink = ListSink()
        with Telemetry(sink=sink) as tele:
            lanes = [Lane() for _ in range(8)]
            lanes.append(Lane(durations=tuple(d * 0.5 for d in cp.durations)))
            results = simulate_batch(cp, lanes, telemetry=tele)
        # Deduped lanes share one result object; values match sequential.
        assert all(results[i] is results[0] for i in range(8))
        assert results[8] is not results[0]
        for i, lane in enumerate(lanes):
            _assert_identical(results[i], _reference(cp, lane), i)
        events = [e for e in sink.events if e["type"] == "batch_simulate"]
        assert len(events) == 1
        assert events[0]["lanes"] == 9
        assert events[0]["deduped"] == 7
        assert events[0]["structures"] == 1
        assert tele.counters["batch_lanes"] == 9
        assert tele.counters["batch_lanes_deduped"] == 7

    def test_dedup_off_simulates_every_lane(self):
        rng = random.Random(6)
        cp = compile_plan(_random_plan(rng))
        sink = ListSink()
        with Telemetry(sink=sink) as tele:
            results = simulate_batch(
                cp, [Lane(), Lane()], dedup=False, telemetry=tele
            )
        assert results[0] is not results[1]
        assert results[0].end_times == results[1].end_times
        event = [e for e in sink.events if e["type"] == "batch_simulate"][-1]
        assert event["deduped"] == 0


class TestStructureKey:
    def test_same_structure_different_durations_share_key(self):
        rng = random.Random(9)
        plan = _random_plan(rng)
        cp = compile_plan(plan)
        variant = dataclasses.replace(
            cp, durations=tuple(d * 3.0 for d in cp.durations)
        )
        assert variant.structure_key == cp.structure_key

    def test_add_invalidates_structure_key(self):
        plan = ExecutionPlan()
        plan.add("a", TaskKind.OTHER, 1.0, ("r",))
        before = compile_plan(plan)
        plan.add("b", TaskKind.OTHER, 1.0, ("r",))
        after = compile_plan(plan)
        assert after is not before
        assert after.structure_key != before.structure_key

    def test_different_shape_different_key(self):
        a = ExecutionPlan()
        a.add("a", TaskKind.OTHER, 1.0, ("r",))
        b = ExecutionPlan()
        b.add("a", TaskKind.OTHER, 1.0, ("r", "s"))
        assert compile_plan(a).structure_key != compile_plan(b).structure_key


class TestSimulateMany:
    def test_mixed_structures_return_in_request_order(self):
        rng = random.Random(21)
        plan_a = _random_plan(rng)
        plan_b = _random_plan(rng)
        # Interleave requests over two structures; results must land back
        # in request order, each identical to its own sequential run.
        requests = [
            SimRequest(plan=plan_a),
            SimRequest(plan=plan_b),
            SimRequest(plan=plan_a, events=(ResourceEvent(0.0, ("res:0",), 0.5),)),
            SimRequest(plan=plan_b),
            SimRequest(plan=plan_a),
        ]
        sink = ListSink()
        with Telemetry(sink=sink) as tele:
            results = simulate_many(requests, telemetry=tele)
        sim = Simulator(record_trace=False)
        for i, (request, result) in enumerate(zip(requests, results)):
            ref = sim.run(request.plan, events=request.events)
            _assert_identical(result, ref, i)
            assert result.plan is request.plan
        event = [e for e in sink.events if e["type"] == "batch_simulate"][-1]
        assert event["lanes"] == 5
        assert event["structures"] == len(
            {compile_plan(p).structure_key for p in (plan_a, plan_b)}
        )

    def test_compiled_plan_requests(self):
        rng = random.Random(22)
        plan = _random_plan(rng)
        cp = compile_plan(plan)
        results = simulate_many([SimRequest(plan=cp), SimRequest(plan=plan)])
        _assert_identical(results[0], Simulator(record_trace=False).run(cp), 0)
        assert results[1] is results[0]  # same identity -> deduped


class TestStrategyEquivalence:
    """Every registered strategy's real plans through the batched kernel."""

    @pytest.fixture(scope="class")
    def session(self):
        from repro.api import Session

        return Session(model="3b", num_gpus=16, total_context=32 * 1024, num_steps=1)

    def test_all_registered_strategies_bit_identical(self, session):
        from repro.registry import available_strategies

        event_sets = [
            (),
            (ResourceEvent(0.0, ("compute:3",), 0.5),),
            (
                ResourceEvent(0.001, ("compute:3",), 0.5),
                ResourceEvent(0.002, ("nic:0:tx", "nic:0:rx"), 0.25),
            ),
        ]
        sim = Simulator()
        for name in available_strategies():
            strategy = session.strategy(name)
            for phase in ("forward", "backward"):
                plan = strategy.plan_layer(batch=session.batches[0], phase=phase)
                cp = compile_plan(plan)
                lanes = [Lane(events=events) for events in event_sets]
                lanes += [
                    Lane(durations=tuple(d * s for d in cp.durations))
                    for s in (0.5, 1.25)
                ]
                results = simulate_batch(cp, lanes)
                for i, (lane, result) in enumerate(zip(lanes, results)):
                    _assert_identical(
                        result, _reference(cp, lane), (name, phase, i)
                    )

    def test_simulate_iterations_matches_sequential(self, session):
        from repro.training.iteration import simulate_iteration, simulate_iterations

        strategy = session.strategy("zeppelin")
        batches = session.batches[:1] * 3  # same batch thrice: dedup regime
        batched = simulate_iterations(strategy, batches)
        for batch, result in zip(batches, batched):
            sequential = simulate_iteration(strategy, batch, record_trace=False)
            assert result.iteration_time_s == sequential.iteration_time_s
            assert (
                result.forward_result.end_times
                == sequential.forward_result.end_times
            )
            assert (
                result.backward_result.end_times
                == sequential.backward_result.end_times
            )

    def test_simulate_iteration_states_matches_sequential(self, session):
        from repro.training.iteration import (
            simulate_iteration,
            simulate_iteration_states,
        )

        strategy = session.strategy("te_cp")
        batch = session.batches[0]
        states = [
            (),
            (ResourceEvent(0.0, ("compute:1",), 0.5),),
            (ResourceEvent(0.0, ("compute:1",), 0.25),),
        ]
        batched = simulate_iteration_states(strategy, batch, states)
        for events, result in zip(states, batched):
            sequential = simulate_iteration(
                strategy, batch, record_trace=False, events=list(events) or None
            )
            assert result.iteration_time_s == sequential.iteration_time_s

    def test_measure_throughput_unchanged(self, session):
        """The batched funnel keeps measured throughput bit-identical."""
        from repro.training.iteration import simulate_iteration
        from repro.training.throughput import measure_throughput

        strategy = session.strategy("te_cp")
        batches = session.batches[:2]
        measured = measure_throughput(strategy, batches, record_trace=False)
        total_tokens = sum(b.total_tokens for b in batches)
        total_time = sum(
            simulate_iteration(strategy, b, record_trace=False).iteration_time_s
            for b in batches
        )
        assert measured.tokens_per_second == total_tokens / total_time
