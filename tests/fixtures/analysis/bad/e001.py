"""Known-bad fixture for E001: an event type outside the vocabulary."""

EVENT_TYPES = {
    "span": frozenset({"name", "dur_s"}),
    "counter": frozenset({"name", "value"}),
}


def emit(tele) -> None:
    tele.event("unplanned_type", detail=1)
