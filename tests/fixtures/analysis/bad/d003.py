"""Known-bad fixture for D003: direct environment reads."""

import os


def resolve_cache() -> str:
    fallback = os.getenv("REPRO_FALLBACK", ".")
    return os.environ.get("REPRO_CACHE_DIR", fallback)
