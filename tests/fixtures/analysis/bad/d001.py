"""Known-bad fixture for D001: wall-clock reads outside repro.obs."""

import time
from datetime import datetime


def stamp() -> float:
    started = time.time()
    elapsed = time.monotonic() - started
    today = datetime.now()
    return elapsed + today.timestamp()
