"""Known-bad fixture for D002: unseeded randomness."""

import random

import numpy as np


def draw() -> float:
    unseeded = random.Random()
    entropy = random.SystemRandom()
    legacy = np.random.rand(3)
    gen = np.random.default_rng()
    return random.random() + unseeded.random() + entropy.random() + float(
        legacy[0] + gen.standard_normal()
    )
