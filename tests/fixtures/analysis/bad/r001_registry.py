"""Known-bad fixture for R001: the table forgot the plugin module."""

_BUILTIN_SUBMITTER_MODULES = {
    "listed": "some_other_module",
}
