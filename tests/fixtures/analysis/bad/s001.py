"""Known-bad fixture for S001: wall-clock data outside meta["timing"]."""

from dataclasses import dataclass


@dataclass(frozen=True)
class BadResult:
    tokens: int
    wall_time_s: float

    def to_dict(self) -> dict:
        return {"tokens": self.tokens, "wall_time_s": self.wall_time_s}
