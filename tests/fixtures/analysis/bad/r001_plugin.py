"""Known-bad fixture for R001: registers a name the table does not list."""

from repro.registry import register_submitter


@register_submitter("ghost")
class GhostSubmitter:
    """A submitter lazy lookup can never find."""
