"""Known-good fixture for R001: registered and listed, in agreement."""

from repro.registry import register_submitter


@register_submitter("widget")
class WidgetSubmitter:
    """A submitter the table lists under this module."""
