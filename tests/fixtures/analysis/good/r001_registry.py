"""Known-good fixture for R001: the table lists the plugin module."""

_BUILTIN_SUBMITTER_MODULES = {
    "widget": "r001_plugin",
}
