"""Known-good fixture for D003: env access through repro.config."""

from repro.config import cache_dir


def resolve_cache() -> str:
    return cache_dir()
