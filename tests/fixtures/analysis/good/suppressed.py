"""Fixture for inline suppression: a justified pragma silences the rule."""

import time


def stamp() -> float:
    return time.time()  # repro: allow(D001) fixture demonstrating suppression
