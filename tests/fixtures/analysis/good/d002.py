"""Known-good fixture for D002: every stream takes an explicit seed."""

import random

import numpy as np


def draw(seed: int) -> float:
    rng = random.Random(seed)
    gen = np.random.default_rng(seed)
    legacy = np.random.RandomState(seed)
    return rng.random() + float(gen.standard_normal()) + float(legacy.rand())
