"""Known-good fixture for S001: wall-clock data under meta["timing"]."""

from dataclasses import dataclass


@dataclass(frozen=True)
class GoodResult:
    tokens: int

    def to_dict(self) -> dict:
        timing = {"wall_time_s": 1.25}
        return {"tokens": self.tokens, "meta": {"timing": timing}}
