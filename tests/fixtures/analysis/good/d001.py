"""Known-good fixture for D001: timing flows through repro.obs."""

import time

from repro.obs.core import TELEMETRY_OFF


def measure() -> float:
    watch = TELEMETRY_OFF.stopwatch()
    with watch.span("work") as span:
        time.sleep(0)  # sleeping is fine; *reading* the clock is not
    return span.elapsed_s
