"""Known-good fixture for E001: emissions stay inside the vocabulary."""

EVENT_TYPES = {
    "span": frozenset({"name", "dur_s"}),
    "counter": frozenset({"name", "value"}),
}


def emit(tele, kind: str) -> None:
    tele.event("span", name="work", dur_s=0.5)
    tele.event(kind, name="dynamic-types-are-runtime-checked")
