"""Tests for model specs, FLOP counting and memory modelling."""

import pytest

from repro.model.flops import (
    attention_flops,
    attention_flops_chunk,
    causal_chunk_flops,
    embedding_flops_per_token,
    iteration_flops,
    linear_flops_per_token,
    moe_flops_per_token,
)
from repro.model.memory import (
    activation_bytes_per_token,
    hidden_bytes_per_token,
    kv_bytes_per_token,
    parameter_bytes,
    token_capacity,
)
from repro.model.spec import MODEL_PRESETS, MoEConfig, TransformerSpec, get_model


class TestTransformerSpec:
    def test_presets_exist_for_all_paper_models(self):
        for name in ("llama-3b", "llama-7b", "llama-13b", "llama-30b", "moe-8x550m"):
            assert name in MODEL_PRESETS

    def test_aliases_resolve(self):
        assert get_model("7B").name == "llama-7b"
        assert get_model("8x550m").is_moe

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError):
            get_model("gpt-5")

    def test_parameter_counts_are_in_the_right_ballpark(self):
        # Within ~30% of the nominal size (embeddings included).
        assert 5e9 < get_model("7b").num_parameters < 9e9
        assert 11e9 < get_model("13b").num_parameters < 16e9
        assert 2.4e9 < get_model("3b").num_parameters < 4.5e9

    def test_head_dim_and_kv_hidden(self):
        spec = get_model("7b")
        assert spec.head_dim == 128
        assert spec.kv_hidden_size == 4096

    def test_invalid_shapes_rejected(self):
        with pytest.raises(ValueError):
            TransformerSpec(
                name="bad",
                hidden_size=100,
                num_layers=2,
                num_heads=3,
                num_kv_heads=3,
                ffn_hidden_size=400,
            )

    def test_moe_config_validation(self):
        with pytest.raises(ValueError):
            MoEConfig(num_experts=4, top_k=8)

    def test_scaled_layers(self):
        spec = get_model("7b").scaled_layers(0.5)
        assert spec.num_layers == 16


class TestFlops:
    def test_attention_is_quadratic(self, spec_7b):
        f1 = attention_flops(spec_7b, 1024)
        f2 = attention_flops(spec_7b, 2048)
        assert f2 / f1 == pytest.approx(4.0)

    def test_linear_is_linear(self, spec_7b):
        per_token = linear_flops_per_token(spec_7b)
        assert per_token > 0
        # 7B model: ~6 * 7e9 / 32 layers per token is the usual rule of thumb;
        # our count (projections + SwiGLU, no embeddings) is the same order.
        assert 2e8 < per_token / spec_7b.num_layers < 1e9

    def test_causal_halves_attention(self, spec_7b):
        full = attention_flops(spec_7b, 4096, causal=False)
        causal = attention_flops(spec_7b, 4096, causal=True)
        assert causal == pytest.approx(full / 2)

    def test_chunk_flops_match_rectangle(self, spec_7b):
        f = attention_flops_chunk(spec_7b, 128, 256, num_layers=1)
        assert f == pytest.approx(4 * 128 * 256 * spec_7b.hidden_size)

    def test_causal_chunk_flops_sum_to_whole_sequence(self, spec_7b):
        seq = 1024
        whole = attention_flops(spec_7b, seq, num_layers=1)
        parts = causal_chunk_flops(spec_7b, 0, 512, num_layers=1) + causal_chunk_flops(
            spec_7b, 512, 512, num_layers=1
        )
        # The causal-pair count includes the diagonal, the closed-form halving
        # does not; they agree to within 1/seq.
        assert parts == pytest.approx(whole, rel=2.0 / seq + 1e-6)

    def test_moe_flops_use_top_k_experts(self, spec_moe):
        per_token = moe_flops_per_token(spec_moe, num_layers=1)
        dense_equivalent = 2 * 3 * spec_moe.hidden_size * spec_moe.ffn_hidden_size
        assert per_token == pytest.approx(dense_equivalent * spec_moe.moe.top_k)

    def test_moe_flops_zero_for_dense(self, spec_7b):
        assert moe_flops_per_token(spec_7b) == 0.0

    def test_iteration_flops_include_backward(self, spec_3b):
        fwd = iteration_flops(spec_3b, [4096, 8192], include_backward=False)
        total = iteration_flops(spec_3b, [4096, 8192], include_backward=True)
        assert total == pytest.approx(3 * fwd)

    def test_embedding_flops(self, spec_7b):
        assert embedding_flops_per_token(spec_7b) == pytest.approx(
            2 * spec_7b.hidden_size * spec_7b.vocab_size
        )


class TestMemory:
    def test_kv_bytes_per_token(self, spec_7b):
        # 2 tensors x 4096 kv hidden x 2 bytes = 16 KiB per layer.
        assert kv_bytes_per_token(spec_7b) == pytest.approx(16384)
        assert kv_bytes_per_token(spec_7b, per_layer=False) == pytest.approx(
            16384 * spec_7b.num_layers
        )

    def test_hidden_bytes_per_token(self, spec_7b):
        assert hidden_bytes_per_token(spec_7b) == pytest.approx(8192)

    def test_parameter_bytes_scale_with_tp(self, spec_7b):
        assert parameter_bytes(spec_7b, tensor_parallel=2) == pytest.approx(
            parameter_bytes(spec_7b, tensor_parallel=1) / 2
        )

    def test_token_capacity_positive_and_monotone_in_memory(self, spec_7b):
        small = token_capacity(spec_7b, 80e9)
        large = token_capacity(spec_7b, 141e9)
        assert 0 < small < large

    def test_token_capacity_raises_when_model_does_not_fit(self):
        spec = get_model("30b")
        with pytest.raises(ValueError):
            token_capacity(spec, 80e9, tensor_parallel=1)

    def test_activation_bytes_shrink_with_tp(self, spec_7b):
        assert activation_bytes_per_token(spec_7b, tensor_parallel=2) < activation_bytes_per_token(
            spec_7b, tensor_parallel=1
        )
