"""Tests for the compute and communication cost models."""

import pytest

from repro.costs.calibration import CALIBRATION_POINTS, get_calibration
from repro.costs.comm import CommCostModel
from repro.costs.compute import ComputeCostModel


@pytest.fixture
def compute_a800():
    return ComputeCostModel(peak_flops=312e12, device_type="A800")


class TestComputeCostModel:
    def test_attention_time_quadratic_scaling(self, compute_a800, spec_7b):
        t1 = compute_a800.attention_time(spec_7b, 8192, num_layers=1)
        t2 = compute_a800.attention_time(spec_7b, 16384, num_layers=1)
        assert 3.5 < t2 / t1 < 4.5

    def test_linear_time_linear_scaling(self, compute_a800, spec_7b):
        t1 = compute_a800.linear_time(spec_7b, 4096, num_layers=1)
        t2 = compute_a800.linear_time(spec_7b, 8192, num_layers=1)
        assert 1.8 < t2 / t1 < 2.2

    def test_kernel_overhead_dominates_tiny_workloads(self, compute_a800, spec_7b):
        tiny = compute_a800.attention_time(spec_7b, 16, num_layers=1)
        assert tiny >= compute_a800.kernel_overhead_s

    def test_zero_work_is_free(self, compute_a800, spec_7b):
        assert compute_a800.attention_pairs_time(spec_7b, 0) == 0.0
        assert compute_a800.linear_time(spec_7b, 0) == 0.0

    def test_tensor_parallel_divides_time(self, spec_7b):
        tp1 = ComputeCostModel(peak_flops=312e12, tensor_parallel=1)
        tp2 = ComputeCostModel(peak_flops=312e12, tensor_parallel=2)
        t1 = tp1.attention_time(spec_7b, 32768, num_layers=1)
        t2 = tp2.attention_time(spec_7b, 32768, num_layers=1)
        assert t2 < t1
        assert t2 == pytest.approx((t1 - tp1.kernel_overhead_s) / 2 + tp1.kernel_overhead_s)

    def test_hopper_devices_are_faster(self, spec_7b):
        a800 = ComputeCostModel(peak_flops=312e12, device_type="A800")
        h200 = ComputeCostModel(peak_flops=990e12, device_type="H200")
        assert h200.attention_time(spec_7b, 65536, num_layers=1) < a800.attention_time(
            spec_7b, 65536, num_layers=1
        )

    def test_fig5_calibration_attention_64k(self, compute_a800, spec_7b):
        """Fig. 5: ~200-240 ms for 64k-token causal attention on one A800."""
        point = get_calibration("fig5_attention_64k_a800")
        measured = compute_a800.attention_time(spec_7b, 65536, num_layers=1)
        assert measured == pytest.approx(point.value_s, rel=point.rtol)

    def test_efficiency_override(self, spec_7b):
        slow = ComputeCostModel(
            peak_flops=312e12, efficiency_override={"attention": 0.1}
        )
        fast = ComputeCostModel(peak_flops=312e12)
        assert slow.attention_time(spec_7b, 32768) > fast.attention_time(spec_7b, 32768)

    def test_describe(self, compute_a800):
        assert "A800" in compute_a800.describe()


class TestCommCostModel:
    def test_p2p_intra_vs_inter(self, cluster_a2):
        comm = CommCostModel(cluster_a2)
        nbytes = 64e6
        assert comm.p2p_time(0, 1, nbytes) < comm.p2p_time(0, 9, nbytes)
        assert comm.p2p_time(3, 3, nbytes) == 0.0

    def test_inter_node_time_scales_with_nics(self, cluster_a2):
        comm = CommCostModel(cluster_a2)
        one = comm.inter_node_time(100e6, nics=1)
        four = comm.inter_node_time(100e6, nics=4)
        assert four < one
        # NIC count is capped at the node's installed NICs.
        assert comm.inter_node_time(100e6, nics=100) == pytest.approx(four)

    def test_kv_chunk_bytes(self, cluster_a2, spec_7b):
        comm = CommCostModel(cluster_a2)
        assert comm.kv_chunk_bytes(spec_7b, 4096) == pytest.approx(4096 * 16384)

    def test_fig12_te_round_calibration(self, cluster_a2, spec_3b):
        """Fig. 12.a: one 4k-token KV hop over a single NIC takes ~2 ms."""
        comm = CommCostModel(cluster_a2)
        point = get_calibration("fig12_te_inter_node_round")
        measured = comm.inter_node_time(comm.kv_chunk_bytes(spec_3b, 4096), nics=1)
        assert measured == pytest.approx(point.value_s, rel=point.rtol)

    def test_allgather_single_rank_is_free(self, cluster_a2):
        comm = CommCostModel(cluster_a2)
        assert comm.allgather_time((0,), 1e6) == 0.0

    def test_allgather_cross_node_slower_than_intra(self, cluster_a2):
        comm = CommCostModel(cluster_a2)
        intra_group = tuple(range(8))
        cross_group = tuple(range(16))
        assert comm.allgather_time(cross_group, 8e6) > comm.allgather_time(
            intra_group, 16e6
        )

    def test_allgather_nic_striping_helps(self, cluster_a2):
        comm = CommCostModel(cluster_a2)
        group = tuple(range(16))
        assert comm.allgather_time(group, 8e6, nics=4) < comm.allgather_time(
            group, 8e6, nics=1
        )

    def test_allreduce_is_twice_allgather_volume(self, cluster_a2):
        comm = CommCostModel(cluster_a2)
        group = tuple(range(8))
        nbytes = 64e6
        assert comm.allreduce_time(group, nbytes) == pytest.approx(
            2 * comm.allgather_time(group, nbytes / 8)
        )

    def test_all_to_all_uniform(self, cluster_a2):
        comm = CommCostModel(cluster_a2)
        group = tuple(range(8))
        t = comm.all_to_all_time(group, uniform_bytes=1e6)
        assert t > 0
        with pytest.raises(ValueError):
            comm.all_to_all_time(group)

    def test_all_to_all_matrix_validation(self, cluster_a2):
        comm = CommCostModel(cluster_a2)
        with pytest.raises(ValueError):
            comm.all_to_all_time((0, 1), send_matrix=[[0.0]])

    def test_ring_round_bottleneck_is_the_node_boundary(self, cluster_a2, spec_7b):
        comm = CommCostModel(cluster_a2)
        ring = tuple(range(16))
        kv = comm.kv_chunk_bytes(spec_7b, 4096)
        round_time = comm.ring_round_time(ring, kv)
        assert round_time == pytest.approx(comm.p2p_time(7, 8, kv))


class TestCalibrationRegistry:
    def test_all_points_positive(self):
        for point in CALIBRATION_POINTS.values():
            assert point.value_s > 0

    def test_unknown_point_raises(self):
        with pytest.raises(KeyError):
            get_calibration("nonexistent")
