"""Tests for the hierarchical sequence partitioner (Alg. 1 + Alg. 2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.partitioner import CapacityError, SequencePartitioner
from repro.core.zones import Zone
from repro.data.sampler import Batch


def make_partitioner(cluster, budget=4096):
    return SequencePartitioner(cluster=cluster, token_budget=budget)


class TestInterNodePartitioning:
    def test_short_sequences_stay_whole_on_nodes(self, cluster_a2, short_batch):
        partitioner = make_partitioner(cluster_a2)
        assignments, inter_nodes, s1 = partitioner.partition_inter_node(short_batch)
        assert inter_nodes == {}
        placed = sum(len(a.whole_sequences) for a in assignments)
        assert placed == short_batch.num_sequences

    def test_giant_sequence_spans_nodes(self, cluster_a2):
        # One sequence equal to the whole cluster budget must span both nodes.
        batch = Batch.from_lengths([2 * 8 * 4096])
        partitioner = make_partitioner(cluster_a2)
        assignments, inter_nodes, s1 = partitioner.partition_inter_node(batch)
        assert list(inter_nodes.values())[0] == [0, 1]
        for a in assignments:
            assert a.inter_fragments, "each node should host a fragment"

    def test_node_loads_are_balanced(self, cluster_a2, mixed_batch):
        partitioner = make_partitioner(cluster_a2, budget=8192)
        assignments, _, _ = partitioner.partition_inter_node(mixed_batch)
        loads = [a.total_tokens for a in assignments]
        assert max(loads) - min(loads) <= max(mixed_batch.lengths)

    def test_over_capacity_batch_raises(self, cluster_a2):
        too_big = Batch.from_lengths([8 * 4096] * 3)  # 3 node-budgets on 2 nodes
        with pytest.raises(CapacityError):
            make_partitioner(cluster_a2).partition_inter_node(too_big)

    def test_threshold_never_exceeds_node_budget(self, cluster_a2, mixed_batch):
        partitioner = make_partitioner(cluster_a2)
        _, _, s1 = partitioner.partition_inter_node(mixed_batch)
        assert s1 <= 8 * 4096


class TestFullPartition:
    def test_every_token_placed_exactly_once(self, cluster_a2, mixed_batch):
        result = make_partitioner(cluster_a2).partition(mixed_batch)
        assert result.total_tokens() == mixed_batch.total_tokens

    def test_short_batch_is_all_local(self, cluster_a2, short_batch):
        result = make_partitioner(cluster_a2).partition(short_batch)
        assert not result.rings
        for placement in result.placements_by_zone(Zone.LOCAL):
            assert placement.ring_id is None

    def test_long_sequences_get_rings(self, cluster_a2, mixed_batch):
        result = make_partitioner(cluster_a2).partition(mixed_batch)
        assert result.rings, "long sequences must be executed by ring groups"
        ring_seqs = {r.seq_id for r in result.rings}
        # The 40960-token sequence cannot fit a 4096-token device budget.
        longest = max(mixed_batch, key=lambda s: s.length)
        assert longest.seq_id in ring_seqs

    def test_ring_members_hold_placements(self, cluster_a2, mixed_batch):
        result = make_partitioner(cluster_a2).partition(mixed_batch)
        for ring in result.rings:
            holders = {
                p.rank
                for rank, ps in result.placements.items()
                for p in ps
                if p.seq_id == ring.seq_id
            }
            assert holders.issubset(set(ring.ranks))
            assert len(holders) >= 2

    def test_intra_ring_stays_within_one_node(self, cluster_a2, mixed_batch):
        result = make_partitioner(cluster_a2).partition(mixed_batch)
        for ring in result.rings_by_zone(Zone.INTRA_NODE):
            nodes = {cluster_a2.gpu(r).node_id for r in ring.ranks}
            assert len(nodes) == 1

    def test_local_placements_fit_device_budget(self, cluster_a2, short_batch):
        budget = 4096
        result = make_partitioner(cluster_a2, budget).partition(short_batch)
        for rank, placements in result.placements.items():
            local_tokens = sum(p.tokens for p in placements if p.zone == Zone.LOCAL)
            assert local_tokens <= budget

    def test_single_node_cluster_never_creates_inter_rings(self, spec_7b):
        from repro.cluster.presets import cluster_a

        cluster = cluster_a(num_nodes=1)
        batch = Batch.from_lengths([16384, 8192, 4096, 2048, 1024])
        result = make_partitioner(cluster, budget=4096).partition(batch)
        assert not result.rings_by_zone(Zone.INTER_NODE)
        assert result.total_tokens() == batch.total_tokens

    def test_quadratic_balance_better_than_token_balance_for_long_seqs(self, cluster_a2):
        # One 30k sequence plus small ones: the 30k sequence must be spread so
        # that no single device carries its whole quadratic cost.
        batch = Batch.from_lengths([30720, 1024, 1024, 1024])
        result = make_partitioner(cluster_a2).partition(batch)
        per_rank_sq = {}
        for rank, placements in result.placements.items():
            per_rank_sq[rank] = sum(p.tokens**2 for p in placements)
        heaviest = max(per_rank_sq.values())
        assert heaviest < 30720**2 / 4, "quadratic load should be spread across devices"


class TestPartitionerProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        lengths=st.lists(
            st.integers(min_value=64, max_value=20000), min_size=1, max_size=20
        ),
        budget=st.sampled_from([2048, 4096, 8192]),
    )
    def test_property_token_conservation(self, tiny_cluster, lengths, budget):
        total_capacity = tiny_cluster.world_size * budget
        if sum(lengths) > total_capacity:
            scale = total_capacity / sum(lengths)
            lengths = [max(64, int(l * scale * 0.9)) for l in lengths]
        batch = Batch.from_lengths(lengths)
        result = SequencePartitioner(cluster=tiny_cluster, token_budget=budget).partition(batch)
        assert result.total_tokens() == batch.total_tokens
        # Every placement refers to a real sequence and a valid rank.
        for rank, placements in result.placements.items():
            for p in placements:
                assert 0 <= p.rank < tiny_cluster.world_size
                assert p.rank == rank

    @settings(max_examples=30, deadline=None)
    @given(
        lengths=st.lists(
            st.integers(min_value=64, max_value=15000), min_size=2, max_size=15
        )
    )
    def test_property_rings_are_valid(self, tiny_cluster, lengths):
        budget = 4096
        total_capacity = tiny_cluster.world_size * budget
        if sum(lengths) > total_capacity:
            scale = total_capacity / sum(lengths)
            lengths = [max(64, int(l * scale * 0.9)) for l in lengths]
        batch = Batch.from_lengths(lengths)
        result = SequencePartitioner(cluster=tiny_cluster, token_budget=budget).partition(batch)
        seq_lengths = {s.seq_id: s.length for s in batch}
        for ring in result.rings:
            assert len(set(ring.ranks)) == len(ring.ranks)
            assert ring.seq_len == seq_lengths[ring.seq_id]
            assert 2 <= ring.group_size <= tiny_cluster.world_size
