"""Tests for the discrete-event simulator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.plan import ExecutionPlan, TaskKind
from repro.sim.engine import Simulator, simulate
from repro.sim.events import EventQueue, ResourceEvent


class TestEventQueue:
    def test_orders_by_time(self):
        q = EventQueue()
        q.push(3.0, 1)
        q.push(1.0, 2)
        q.push(2.0, 3)
        assert [q.pop().task_id for _ in range(3)] == [2, 3, 1]

    def test_ties_preserve_insertion_order(self):
        q = EventQueue()
        q.push(1.0, 10)
        q.push(1.0, 20)
        assert q.pop().task_id == 10
        assert q.pop().task_id == 20

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().push(-1.0, 0)


class TestSimulator:
    def test_empty_plan(self):
        assert simulate(ExecutionPlan()).makespan_s == 0.0

    def test_independent_tasks_on_different_resources_overlap(self):
        plan = ExecutionPlan()
        plan.add("a", TaskKind.ATTENTION, 2.0, ("compute:0",))
        plan.add("b", TaskKind.INTER_COMM, 2.0, ("nic:0:tx",))
        assert simulate(plan).makespan_s == pytest.approx(2.0)

    def test_tasks_on_same_resource_serialize(self):
        plan = ExecutionPlan()
        plan.add("a", TaskKind.ATTENTION, 2.0, ("compute:0",))
        plan.add("b", TaskKind.ATTENTION, 3.0, ("compute:0",))
        assert simulate(plan).makespan_s == pytest.approx(5.0)

    def test_dependencies_are_respected(self):
        plan = ExecutionPlan()
        a = plan.add("a", TaskKind.ATTENTION, 1.0, ("compute:0",))
        b = plan.add("b", TaskKind.INTER_COMM, 1.0, ("nic:0:tx",), deps=[a])
        plan.add("c", TaskKind.ATTENTION, 1.0, ("compute:1",), deps=[b])
        result = simulate(plan)
        assert result.makespan_s == pytest.approx(3.0)
        assert result.start_times[2] >= result.end_times[1]

    def test_priority_breaks_ties_for_a_contended_resource(self):
        plan = ExecutionPlan()
        plan.add("low", TaskKind.ATTENTION, 1.0, ("compute:0",), priority=5)
        plan.add("high", TaskKind.ATTENTION, 1.0, ("compute:0",), priority=0)
        result = simulate(plan)
        assert result.start_times[1] == pytest.approx(0.0)
        assert result.start_times[0] == pytest.approx(1.0)

    def test_multi_resource_task_holds_all_resources(self):
        plan = ExecutionPlan()
        plan.add("xfer", TaskKind.INTER_COMM, 2.0, ("nic:0:tx", "nic:4:rx"))
        plan.add("other_tx", TaskKind.INTER_COMM, 1.0, ("nic:0:tx",))
        plan.add("other_rx", TaskKind.INTER_COMM, 1.0, ("nic:4:rx",))
        result = simulate(plan)
        # Both follow-up transfers must wait for the two-resource task.
        assert result.start_times[1] >= 2.0
        assert result.start_times[2] >= 2.0

    def test_zero_duration_tasks_complete(self):
        plan = ExecutionPlan()
        a = plan.add("barrier", TaskKind.OTHER, 0.0, ())
        plan.add("next", TaskKind.ATTENTION, 1.0, ("compute:0",), deps=[a])
        assert simulate(plan).makespan_s == pytest.approx(1.0)

    def test_makespan_at_least_critical_path(self):
        plan = ExecutionPlan()
        prev = None
        for i in range(5):
            deps = [prev] if prev is not None else []
            prev = plan.add(f"t{i}", TaskKind.ATTENTION, 0.5, ("compute:0",), deps=deps)
        result = simulate(plan)
        assert result.makespan_s >= plan.critical_path_lower_bound() - 1e-12

    def test_trace_recording_can_be_disabled(self):
        plan = ExecutionPlan()
        plan.add("a", TaskKind.ATTENTION, 1.0, ("compute:0",))
        result = Simulator(record_trace=False).run(plan)
        assert result.makespan_s == pytest.approx(1.0)
        assert not result.trace.spans

    def test_all_tasks_have_start_and_end_times(self):
        plan = ExecutionPlan()
        a = plan.add("a", TaskKind.ATTENTION, 1.0, ("compute:0",))
        plan.add("b", TaskKind.LINEAR, 1.0, ("compute:0",), deps=[a])
        result = simulate(plan)
        assert set(result.start_times) == {0, 1}
        assert set(result.end_times) == {0, 1}


def _chain_plan() -> ExecutionPlan:
    """a(2s) -> b(3s), both on compute:0."""
    plan = ExecutionPlan()
    a = plan.add("a", TaskKind.ATTENTION, 2.0, ("compute:0",))
    plan.add("b", TaskKind.LINEAR, 3.0, ("compute:0",), deps=[a])
    return plan


class TestDynamicSimulator:
    def test_resource_event_validation(self):
        with pytest.raises(ValueError):
            ResourceEvent(0.0, ("compute:0",), 0.0)
        with pytest.raises(ValueError):
            ResourceEvent(0.0, (), 0.5)
        assert ResourceEvent(0.0, ("compute:0",), None).is_failure

    def test_empty_events_matches_static_path_exactly(self):
        plan = _chain_plan()
        assert simulate(plan, events=[]).makespan_s == simulate(plan).makespan_s

    def test_empty_events_matches_static_for_all_registered_strategies(self):
        """Regression guard: the dynamic path with no perturbations is the
        identity — bit-for-bit equal makespans for every strategy's plans."""
        from repro.api import Session
        from repro.registry import available_strategies

        session = Session(model="3b", num_gpus=16, total_context=32 * 1024, num_steps=1)
        batch = session.batches[0]
        for name in available_strategies():
            strategy = session.strategy(name)
            for phase in ("forward", "backward"):
                plan = strategy.plan_layer(batch, phase=phase)
                static = Simulator(record_trace=False).run(plan)
                dynamic = Simulator(record_trace=False).run(plan, events=[])
                assert dynamic.makespan_s == static.makespan_s, (name, phase)
                assert dynamic.end_times == static.end_times, (name, phase)

    def test_slowdown_from_start_scales_durations(self):
        result = simulate(_chain_plan(), events=[ResourceEvent(0.0, ("compute:0",), 0.5)])
        assert result.makespan_s == pytest.approx(10.0)

    def test_mid_task_slowdown_retimes_remaining_work(self):
        # 1s of "a" at full speed, 1s of work left at half speed (2s), then
        # all of "b" at half speed (6s): 1 + 2 + 6 = 9.
        result = simulate(_chain_plan(), events=[ResourceEvent(1.0, ("compute:0",), 0.5)])
        assert result.makespan_s == pytest.approx(9.0)

    def test_recovery_speedup_mid_task(self):
        # Slow from the start, back to full speed at t=2: 1s of work done by
        # t=2, remaining 1s + 3s at full speed.
        events = [
            ResourceEvent(0.0, ("compute:0",), 0.5),
            ResourceEvent(2.0, ("compute:0",), 1.0),
        ]
        result = simulate(_chain_plan(), events=events)
        assert result.makespan_s == pytest.approx(6.0)

    def test_task_speed_is_min_over_resources(self):
        plan = ExecutionPlan()
        plan.add("xfer", TaskKind.INTER_COMM, 2.0, ("nic:0:tx", "nic:1:rx"))
        events = [
            ResourceEvent(0.0, ("nic:0:tx",), 0.8),
            ResourceEvent(0.0, ("nic:1:rx",), 0.25),
        ]
        assert simulate(plan, events=events).makespan_s == pytest.approx(8.0)

    def test_events_for_unknown_resources_are_ignored(self):
        result = simulate(
            _chain_plan(),
            events=[
                ResourceEvent(0.0, ("compute:99",), 0.1),
                ResourceEvent(1.0, ("nic:7:tx",), None),
            ],
        )
        assert result.makespan_s == pytest.approx(5.0)
        assert not result.failed

    def test_start_time_offsets_the_schedule(self):
        # Event at absolute t=11 with the plan starting at t=10 lands 1s in.
        result = simulate(
            _chain_plan(),
            events=[ResourceEvent(11.0, ("compute:0",), 0.5)],
            start_time_s=10.0,
        )
        assert result.makespan_s == pytest.approx(9.0)
        # An event from before the start sets the initial state.
        result = simulate(
            _chain_plan(),
            events=[ResourceEvent(3.0, ("compute:0",), 0.5)],
            start_time_s=10.0,
        )
        assert result.makespan_s == pytest.approx(10.0)

    def test_failure_aborts_in_flight_task(self):
        plan = _chain_plan()
        result = simulate(plan, events=[ResourceEvent(1.0, ("compute:0",), None)])
        assert result.failed
        assert result.aborted_task_ids == (0,)
        assert result.completed_tasks == 0
        assert result.failed_resources == ("compute:0",)
        (span,) = result.trace.spans
        assert span.aborted and span.end_s == pytest.approx(1.0)

    def test_failure_strands_dependent_and_waiting_tasks(self):
        plan = ExecutionPlan()
        a = plan.add("a", TaskKind.ATTENTION, 1.0, ("compute:0",))
        plan.add("b", TaskKind.LINEAR, 1.0, ("compute:0",), deps=[a])
        plan.add("c", TaskKind.ATTENTION, 5.0, ("compute:1",))
        result = simulate(plan, events=[ResourceEvent(0.5, ("compute:0",), None)])
        assert result.failed
        assert result.aborted_task_ids == (0,)
        # The dependent of the aborted task is stranded, not lost track of.
        assert result.stranded_task_ids == (1,)
        # "c" on the surviving resource still completes.
        assert result.end_times[2] == pytest.approx(5.0)
        assert result.completed_tasks == 1

    def test_unaffected_resources_keep_running_after_failure(self):
        plan = ExecutionPlan()
        plan.add("dead", TaskKind.ATTENTION, 10.0, ("compute:0",))
        plan.add("alive", TaskKind.ATTENTION, 10.0, ("compute:1",))
        result = simulate(plan, events=[ResourceEvent(2.0, ("compute:0",), None)])
        assert result.end_times[1] == pytest.approx(10.0)
        assert result.makespan_s == pytest.approx(10.0)

    def test_task_finishing_at_failure_instant_counts_completed(self):
        plan = ExecutionPlan()
        plan.add("a", TaskKind.ATTENTION, 2.0, ("compute:0",))
        result = simulate(plan, events=[ResourceEvent(2.0, ("compute:0",), None)])
        assert result.completed_tasks == 1
        assert not result.trace.spans[0].aborted

    def test_failure_before_start_strands_everything(self):
        plan = _chain_plan()
        result = simulate(plan, events=[ResourceEvent(0.0, ("compute:0",), None)])
        assert result.failed
        assert result.completed_tasks == 0
        assert result.stranded_task_ids == (0, 1)

    def test_every_task_is_completed_aborted_or_stranded(self):
        plan = ExecutionPlan()
        a = plan.add("a", TaskKind.ATTENTION, 2.0, ("compute:0",))
        plan.add("b", TaskKind.LINEAR, 1.0, ("compute:0",), deps=[a])
        plan.add("c", TaskKind.ATTENTION, 0.5, ("compute:1",))
        result = simulate(plan, events=[ResourceEvent(1.0, ("compute:0",), None)])
        accounted = (
            set(result.end_times)
            | set(result.aborted_task_ids)
            | set(result.stranded_task_ids)
        )
        assert accounted == {0, 1, 2}

    def test_multi_resource_task_aborts_if_any_resource_dies(self):
        plan = ExecutionPlan()
        plan.add("xfer", TaskKind.INTER_COMM, 4.0, ("nic:0:tx", "nic:1:rx"))
        result = simulate(plan, events=[ResourceEvent(1.0, ("nic:1:rx",), None)])
        assert result.aborted_task_ids == (0,)

    def test_dynamic_run_reports_full_completion_when_healthy(self):
        plan = _chain_plan()
        result = Simulator().run(plan, events=[])
        assert result.completed_tasks == plan.num_tasks
        assert not result.failed
        assert result.aborted_task_ids == ()
        assert result.stranded_task_ids == ()


class TestSimulatorProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        durations=st.lists(
            st.floats(min_value=0.0, max_value=5.0), min_size=1, max_size=20
        ),
        num_resources=st.integers(min_value=1, max_value=4),
    )
    def test_property_makespan_bounds(self, durations, num_resources):
        """Makespan lies between max duration and the serial sum."""
        plan = ExecutionPlan()
        for i, d in enumerate(durations):
            plan.add(
                f"t{i}",
                TaskKind.ATTENTION,
                d,
                (f"compute:{i % num_resources}",),
            )
        result = simulate(plan)
        assert result.makespan_s <= sum(durations) + 1e-9
        assert result.makespan_s >= max(durations) - 1e-9

    @settings(max_examples=20, deadline=None)
    @given(
        durations=st.lists(
            st.floats(min_value=0.1, max_value=2.0), min_size=2, max_size=10
        )
    )
    def test_property_chain_equals_sum(self, durations):
        """A pure dependency chain is exactly the sum of durations."""
        plan = ExecutionPlan()
        prev = None
        for i, d in enumerate(durations):
            deps = [prev] if prev is not None else []
            prev = plan.add(f"t{i}", TaskKind.OTHER, d, ("compute:0",), deps=deps)
        result = simulate(plan)
        assert result.makespan_s == pytest.approx(sum(durations))
