"""Tests for the discrete-event simulator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.plan import ExecutionPlan, TaskKind
from repro.sim.engine import Simulator, simulate
from repro.sim.events import EventQueue


class TestEventQueue:
    def test_orders_by_time(self):
        q = EventQueue()
        q.push(3.0, 1)
        q.push(1.0, 2)
        q.push(2.0, 3)
        assert [q.pop().task_id for _ in range(3)] == [2, 3, 1]

    def test_ties_preserve_insertion_order(self):
        q = EventQueue()
        q.push(1.0, 10)
        q.push(1.0, 20)
        assert q.pop().task_id == 10
        assert q.pop().task_id == 20

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().push(-1.0, 0)


class TestSimulator:
    def test_empty_plan(self):
        assert simulate(ExecutionPlan()).makespan_s == 0.0

    def test_independent_tasks_on_different_resources_overlap(self):
        plan = ExecutionPlan()
        plan.add("a", TaskKind.ATTENTION, 2.0, ("compute:0",))
        plan.add("b", TaskKind.INTER_COMM, 2.0, ("nic:0:tx",))
        assert simulate(plan).makespan_s == pytest.approx(2.0)

    def test_tasks_on_same_resource_serialize(self):
        plan = ExecutionPlan()
        plan.add("a", TaskKind.ATTENTION, 2.0, ("compute:0",))
        plan.add("b", TaskKind.ATTENTION, 3.0, ("compute:0",))
        assert simulate(plan).makespan_s == pytest.approx(5.0)

    def test_dependencies_are_respected(self):
        plan = ExecutionPlan()
        a = plan.add("a", TaskKind.ATTENTION, 1.0, ("compute:0",))
        b = plan.add("b", TaskKind.INTER_COMM, 1.0, ("nic:0:tx",), deps=[a])
        plan.add("c", TaskKind.ATTENTION, 1.0, ("compute:1",), deps=[b])
        result = simulate(plan)
        assert result.makespan_s == pytest.approx(3.0)
        assert result.start_times[2] >= result.end_times[1]

    def test_priority_breaks_ties_for_a_contended_resource(self):
        plan = ExecutionPlan()
        plan.add("low", TaskKind.ATTENTION, 1.0, ("compute:0",), priority=5)
        plan.add("high", TaskKind.ATTENTION, 1.0, ("compute:0",), priority=0)
        result = simulate(plan)
        assert result.start_times[1] == pytest.approx(0.0)
        assert result.start_times[0] == pytest.approx(1.0)

    def test_multi_resource_task_holds_all_resources(self):
        plan = ExecutionPlan()
        plan.add("xfer", TaskKind.INTER_COMM, 2.0, ("nic:0:tx", "nic:4:rx"))
        plan.add("other_tx", TaskKind.INTER_COMM, 1.0, ("nic:0:tx",))
        plan.add("other_rx", TaskKind.INTER_COMM, 1.0, ("nic:4:rx",))
        result = simulate(plan)
        # Both follow-up transfers must wait for the two-resource task.
        assert result.start_times[1] >= 2.0
        assert result.start_times[2] >= 2.0

    def test_zero_duration_tasks_complete(self):
        plan = ExecutionPlan()
        a = plan.add("barrier", TaskKind.OTHER, 0.0, ())
        plan.add("next", TaskKind.ATTENTION, 1.0, ("compute:0",), deps=[a])
        assert simulate(plan).makespan_s == pytest.approx(1.0)

    def test_makespan_at_least_critical_path(self):
        plan = ExecutionPlan()
        prev = None
        for i in range(5):
            deps = [prev] if prev is not None else []
            prev = plan.add(f"t{i}", TaskKind.ATTENTION, 0.5, ("compute:0",), deps=deps)
        result = simulate(plan)
        assert result.makespan_s >= plan.critical_path_lower_bound() - 1e-12

    def test_trace_recording_can_be_disabled(self):
        plan = ExecutionPlan()
        plan.add("a", TaskKind.ATTENTION, 1.0, ("compute:0",))
        result = Simulator(record_trace=False).run(plan)
        assert result.makespan_s == pytest.approx(1.0)
        assert not result.trace.spans

    def test_all_tasks_have_start_and_end_times(self):
        plan = ExecutionPlan()
        a = plan.add("a", TaskKind.ATTENTION, 1.0, ("compute:0",))
        plan.add("b", TaskKind.LINEAR, 1.0, ("compute:0",), deps=[a])
        result = simulate(plan)
        assert set(result.start_times) == {0, 1}
        assert set(result.end_times) == {0, 1}


class TestSimulatorProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        durations=st.lists(
            st.floats(min_value=0.0, max_value=5.0), min_size=1, max_size=20
        ),
        num_resources=st.integers(min_value=1, max_value=4),
    )
    def test_property_makespan_bounds(self, durations, num_resources):
        """Makespan lies between max duration and the serial sum."""
        plan = ExecutionPlan()
        for i, d in enumerate(durations):
            plan.add(
                f"t{i}",
                TaskKind.ATTENTION,
                d,
                (f"compute:{i % num_resources}",),
            )
        result = simulate(plan)
        assert result.makespan_s <= sum(durations) + 1e-9
        assert result.makespan_s >= max(durations) - 1e-9

    @settings(max_examples=20, deadline=None)
    @given(
        durations=st.lists(
            st.floats(min_value=0.1, max_value=2.0), min_size=2, max_size=10
        )
    )
    def test_property_chain_equals_sum(self, durations):
        """A pure dependency chain is exactly the sum of durations."""
        plan = ExecutionPlan()
        prev = None
        for i, d in enumerate(durations):
            deps = [prev] if prev is not None else []
            prev = plan.add(f"t{i}", TaskKind.OTHER, d, ("compute:0",), deps=deps)
        result = simulate(plan)
        assert result.makespan_s == pytest.approx(sum(durations))
