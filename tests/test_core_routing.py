"""Tests for the three-step communication routing layer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.routing import RoutingLayer


class TestProxySelection:
    def test_proxies_spread_across_nics(self, cluster_a2):
        routing = RoutingLayer(cluster=cluster_a2)
        proxies = routing.select_proxies(node_id=0, count=4)
        nics = {cluster_a2.nic_of(r).nic_id for r in proxies}
        assert len(nics) == 4, "4 proxies on a 4-NIC node should use 4 distinct NICs"

    def test_preferred_ranks_are_used_first(self, cluster_a2):
        routing = RoutingLayer(cluster=cluster_a2)
        proxies = routing.select_proxies(node_id=0, preferred_ranks=(3, 5), count=2)
        assert 3 in proxies and 5 in proxies

    def test_count_is_capped_at_node_size(self, cluster_a2):
        routing = RoutingLayer(cluster=cluster_a2)
        proxies = routing.select_proxies(node_id=1, count=100)
        assert len(proxies) == cluster_a2.gpus_per_node
        assert all(cluster_a2.gpu(r).node_id == 1 for r in proxies)


class TestRouteDecomposition:
    def test_disabled_routing_is_a_direct_transfer(self, cluster_a2):
        routing = RoutingLayer(cluster=cluster_a2, enabled=False)
        decision = routing.route(0, 8, nbytes=1e6)
        assert decision.x1 == 1 and decision.x2 == 1
        assert len(decision.transfers) == 1
        assert decision.transfers[0].step == "transfer"

    def test_three_steps_present_when_enabled(self, cluster_a2):
        routing = RoutingLayer(cluster=cluster_a2)
        decision = routing.route(0, 8, nbytes=64e6, ring_ranks=(0, 8))
        steps = {t.step for t in decision.transfers}
        assert steps == {"dispatch", "transfer", "combine"}

    def test_bytes_are_conserved_across_the_inter_node_step(self, cluster_a2):
        routing = RoutingLayer(cluster=cluster_a2)
        nbytes = 48e6
        decision = routing.route(0, 8, nbytes=nbytes)
        transferred = sum(t.nbytes for t in decision.transfers_for_step("transfer"))
        assert transferred == pytest.approx(nbytes)

    def test_transfer_uses_multiple_nics(self, cluster_a2):
        routing = RoutingLayer(cluster=cluster_a2)
        decision = routing.route(0, 8, nbytes=64e6)
        nics = {
            cluster_a2.nic_of(t.src_rank).nic_id
            for t in decision.transfers_for_step("transfer")
        }
        assert len(nics) == cluster_a2.profile.nics_per_node

    def test_same_node_hop_rejected(self, cluster_a2):
        routing = RoutingLayer(cluster=cluster_a2)
        with pytest.raises(ValueError):
            routing.route(0, 1, nbytes=1e6)

    def test_proxy_counts_are_paired(self, tiny_cluster):
        routing = RoutingLayer(cluster=tiny_cluster)
        decision = routing.route(0, 4, nbytes=8e6)
        assert decision.x1 == decision.x2
        assert len(decision.transfers_for_step("transfer")) == decision.x1


class TestRoutedCost:
    def test_eq1_matches_manual_formula(self, cluster_a2):
        routing = RoutingLayer(cluster=cluster_a2)
        profile = cluster_a2.profile
        n, x1, x2 = 64e6, 8, 8
        expected = (
            profile.b_intra * n * (x1 - 1) / x1
            + profile.b_inter * max(n / x1, n / x2)
            + profile.b_intra * n * (x2 - 1) / x2
        )
        assert routing.routed_cost(n, x1, x2) == pytest.approx(expected)

    def test_routing_beats_direct_transfer_for_large_payloads(self, cluster_a2):
        routing = RoutingLayer(cluster=cluster_a2)
        assert routing.speedup(64e6, 8, 8) > 3.0

    def test_single_proxy_matches_direct_cost(self, cluster_a2):
        routing = RoutingLayer(cluster=cluster_a2)
        assert routing.routed_cost(1e6, 1, 1) == pytest.approx(routing.direct_cost(1e6))

    @settings(max_examples=40, deadline=None)
    @given(
        nbytes=st.floats(min_value=1e3, max_value=1e9),
        x=st.integers(min_value=1, max_value=8),
    )
    def test_property_routed_cost_never_exceeds_direct(self, cluster_a2, nbytes, x):
        # With paired proxy counts (as the routing layer enforces) and the
        # >10x bandwidth gap of Cluster A, the routed decomposition is never
        # slower than the direct single-NIC transfer.
        routing = RoutingLayer(cluster=cluster_a2)
        assert routing.routed_cost(nbytes, x, x) <= routing.direct_cost(nbytes) * 1.0001

    @settings(max_examples=30, deadline=None)
    @given(x=st.integers(min_value=1, max_value=8))
    def test_property_more_proxies_never_hurt(self, cluster_a2, x):
        routing = RoutingLayer(cluster=cluster_a2)
        n = 32e6
        assert routing.routed_cost(n, x, x) >= routing.routed_cost(n, 8, 8) - 1e-12
