"""Tests for the shared Strategy emission helpers (linear, remap, all-to-all)."""

import pytest

from repro.baselines.te_cp import TransformerEngineCPStrategy
from repro.core.plan import ExecutionPlan, TaskKind
from repro.core.remapping import RemappingLayer
from repro.core.strategy import Strategy
from repro.sim.engine import simulate


@pytest.fixture
def strategy(context_16):
    # Any concrete strategy exposes the shared helpers.
    return TransformerEngineCPStrategy(context_16)


class TestPhaseFactors:
    def test_forward_factors_are_unity(self):
        assert Strategy.phase_factors("forward") == (1.0, 1.0)

    def test_backward_factors_double_work(self):
        compute, comm = Strategy.phase_factors("backward")
        assert compute == 2.0 and comm == 2.0

    def test_invalid_phase_rejected(self):
        with pytest.raises(ValueError):
            Strategy.phase_factors("diagonal")


class TestEmitLinear:
    def test_one_task_per_nonzero_rank(self, strategy):
        plan = ExecutionPlan()
        ids = strategy.emit_linear(plan, {0: 4096, 1: 0, 2: 2048}, {}, phase="forward")
        assert set(ids) == {0, 2}
        assert all(plan.tasks[t].kind == TaskKind.LINEAR for t in ids.values())

    def test_durations_scale_with_tokens(self, strategy):
        plan = ExecutionPlan()
        ids = strategy.emit_linear(plan, {0: 1024, 1: 8192}, {}, phase="forward")
        assert plan.tasks[ids[1]].duration_s > plan.tasks[ids[0]].duration_s

    def test_backward_linear_is_heavier(self, strategy):
        fwd_plan, bwd_plan = ExecutionPlan(), ExecutionPlan()
        fwd = strategy.emit_linear(fwd_plan, {0: 4096}, {}, phase="forward")
        bwd = strategy.emit_linear(bwd_plan, {0: 4096}, {}, phase="backward")
        assert bwd_plan.tasks[bwd[0]].duration_s > fwd_plan.tasks[fwd[0]].duration_s

    def test_dependencies_are_attached(self, strategy):
        plan = ExecutionPlan()
        a = plan.add("attn", TaskKind.ATTENTION, 1e-3, ("compute:0",), rank=0)
        ids = strategy.emit_linear(plan, {0: 1024}, {0: [a]}, phase="forward")
        assert a in plan.tasks[ids[0]].deps


class TestEmitRemap:
    def test_transfers_follow_the_plan(self, strategy, cluster_a2):
        remap_plan = RemappingLayer(cluster=cluster_a2).plan(
            {r: (8192 if r == 0 else 3500) for r in cluster_a2.iter_ranks()}
        )
        plan = ExecutionPlan()
        incoming = strategy.emit_remap(plan, remap_plan, {}, phase="forward")
        remap_tasks = [t for t in plan.tasks if t.kind == TaskKind.REMAP]
        assert remap_tasks, "an imbalanced layout must produce transfers"
        # Every emitted transfer lands in the incoming map of its destination.
        assert sum(len(v) for v in incoming.values()) == len(remap_tasks)
        # Simulation completes.
        assert simulate(plan).makespan_s > 0

    def test_balanced_plan_emits_nothing(self, strategy, cluster_a2):
        remap_plan = RemappingLayer(cluster=cluster_a2).plan(
            {r: 4096 for r in cluster_a2.iter_ranks()}
        )
        plan = ExecutionPlan()
        incoming = strategy.emit_remap(plan, remap_plan, {})
        assert plan.num_tasks == 0
        assert all(not v for v in incoming.values())

    def test_send_matrix_bytes_scaling(self, cluster_a2):
        remap_plan = RemappingLayer(cluster=cluster_a2).plan(
            {r: (8192 if r == 0 else 3500) for r in cluster_a2.iter_ranks()}
        )
        matrix = remap_plan.send_matrix_bytes(bytes_per_token=100.0)
        for i, row in enumerate(matrix):
            for j, cell in enumerate(row):
                assert cell == pytest.approx(remap_plan.transfer_tokens[i][j] * 100.0)


class TestEmitAllToAll:
    def test_single_rank_group_is_a_noop(self, strategy):
        plan = ExecutionPlan()
        assert strategy.emit_all_to_all(plan, (0,), 1e6, {}, label="a2a") == {}
        assert plan.num_tasks == 0

    def test_group_emits_one_task_per_rank(self, strategy):
        plan = ExecutionPlan()
        ids = strategy.emit_all_to_all(plan, (0, 1, 2, 3), 4e6, {}, label="a2a")
        assert len(ids) == 4
        durations = {plan.tasks[t].duration_s for t in ids.values()}
        assert len(durations) == 1, "uniform all-to-all has a uniform per-rank time"
