"""Tests for repro.config — the sanctioned environment-access chokepoint."""

import pytest

from repro import config
from repro.core.remapping import RemappingLayer
from repro.exec.cache import DEFAULT_CACHE_DIR, ResultCache, cache_salt


class TestEnvStr:
    def test_unset_returns_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_TEST_KNOB", raising=False)
        assert config.env_str("REPRO_TEST_KNOB", "fallback") == "fallback"
        assert config.env_str("REPRO_TEST_KNOB") is None

    def test_set_returns_value(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_KNOB", "value")
        assert config.env_str("REPRO_TEST_KNOB", "fallback") == "value"

    def test_empty_counts_as_unset(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_KNOB", "")
        assert config.env_str("REPRO_TEST_KNOB", "fallback") == "fallback"


class TestCacheDir:
    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert config.cache_dir() == config.DEFAULT_CACHE_DIR == DEFAULT_CACHE_DIR
        assert config.cache_dir_override() is None

    def test_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        assert config.cache_dir() == str(tmp_path / "cache")
        assert config.cache_dir_override() == str(tmp_path / "cache")

    def test_result_cache_honours_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        assert ResultCache().root == tmp_path / "cache"


class TestRemapSolver:
    def test_default_auto(self, monkeypatch):
        monkeypatch.delenv("REPRO_REMAP_SOLVER", raising=False)
        assert config.remap_solver() == "auto"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_REMAP_SOLVER", "greedy")
        assert config.remap_solver() == "greedy"

    def test_invalid_value_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_REMAP_SOLVER", "gurobi")
        with pytest.raises(ValueError, match="REPRO_REMAP_SOLVER"):
            config.remap_solver()

    def test_remapping_layer_resolves_default(self, monkeypatch, cluster_a2):
        monkeypatch.setenv("REPRO_REMAP_SOLVER", "greedy")
        assert RemappingLayer(cluster=cluster_a2).solver == "greedy"
        monkeypatch.delenv("REPRO_REMAP_SOLVER")
        assert RemappingLayer(cluster=cluster_a2).solver == "auto"

    def test_explicit_solver_wins_over_env(self, monkeypatch, cluster_a2):
        monkeypatch.setenv("REPRO_REMAP_SOLVER", "greedy")
        assert RemappingLayer(cluster=cluster_a2, solver="linprog").solver == (
            "linprog"
        )

    def test_cache_salt_folds_in_solver(self, monkeypatch):
        monkeypatch.delenv("REPRO_REMAP_SOLVER", raising=False)
        assert "remap=auto" in cache_salt()
        monkeypatch.setenv("REPRO_REMAP_SOLVER", "greedy")
        assert "remap=greedy" in cache_salt()


class TestWorkerEnviron:
    def test_copy_does_not_leak_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_KNOB", "original")
        env = config.worker_environ()
        assert env["REPRO_TEST_KNOB"] == "original"
        env["REPRO_TEST_KNOB"] = "mutated"
        assert config.env_str("REPRO_TEST_KNOB") == "original"
