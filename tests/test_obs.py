"""Tests for repro.obs: hub, sketches, events, export, and non-interference.

The load-bearing guarantees pinned here:

* the P² :class:`LatencySketch` stays O(1) past its exact threshold while
  keeping p50/p95/p99 within 1% of exact on a million-sample stream;
* every emitted event validates against the versioned schema;
* telemetry never changes a result byte — sweeps, serves and resilience
  runs produce identical JSON with telemetry on or off.
"""

import json
import math
import random

import pytest

from repro.api import Session
from repro.cli import main
from repro.exec import SweepSpec, run_sweep
from repro.obs import (
    TELEMETRY_OFF,
    EVENT_SCHEMA_VERSION,
    LatencySketch,
    P2Quantile,
    Telemetry,
    WindowedRate,
    as_telemetry,
    current_telemetry,
    telemetry_scope,
    validate_event,
)
from repro.obs.core import NullTelemetry
from repro.obs.events import make_event
from repro.obs.export import (
    JsonlSink,
    ListSink,
    read_events,
    render_prometheus,
    render_report,
    summarize_events,
)
from repro.obs.sketch import exact_percentile


def tiny_spec(strategies=("te_cp", "zeppelin")):
    return SweepSpec(
        base={
            "model": "3b",
            "num_gpus": 8,
            "total_context": 32 * 1024,
            "num_steps": 1,
            "seed": 0,
            "strategy_kwargs": {},
            "label": None,
            "perturbation": None,
            "recovery": "checkpoint_restart",
            "num_iterations": 4,
        },
        axes={"strategy": tuple(strategies)},
    )


class TestExactPercentile:
    def test_matches_numpy_convention(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert exact_percentile(values, 0) == 1.0
        assert exact_percentile(values, 50) == 2.5
        assert exact_percentile(values, 100) == 4.0
        assert exact_percentile([], 95) == 0.0
        assert exact_percentile([7.0], 42) == 7.0

    def test_rejects_nan_and_bad_q(self):
        with pytest.raises(ValueError, match="NaN"):
            exact_percentile([1.0, float("nan")], 50)
        with pytest.raises(ValueError, match=r"\[0, 100\]"):
            exact_percentile([1.0], 150)

    def test_exact_rank_sidesteps_inf_times_zero(self):
        # frac == 0.0 must not interpolate: inf * 0.0 is nan.
        assert exact_percentile([1.0, 2.0, float("inf")], 50) == 2.0
        assert exact_percentile([1.0, float("inf")], 100) == float("inf")


class TestP2Quantile:
    def test_exact_below_six_samples(self):
        est = P2Quantile(0.5)
        for v in (5.0, 1.0, 3.0):
            est.add(v)
        assert est.value() == 3.0
        assert P2Quantile(0.9).value() == 0.0  # empty stream

    def test_rejects_nan_and_bad_quantile(self):
        with pytest.raises(ValueError, match="NaN"):
            P2Quantile(0.5).add(float("nan"))
        with pytest.raises(ValueError, match=r"\(0, 1\)"):
            P2Quantile(1.0)

    def test_deterministic(self):
        rng = random.Random(3)
        values = [rng.expovariate(1.0) for _ in range(5000)]
        a, b = P2Quantile(0.95), P2Quantile(0.95)
        for v in values:
            a.add(v)
            b.add(v)
        assert a.value() == b.value()


class TestLatencySketch:
    def test_exact_below_threshold(self):
        rng = random.Random(11)
        values = [rng.lognormvariate(0.0, 1.0) for _ in range(500)]
        sketch = LatencySketch()
        for v in values:
            sketch.add(v)
        assert sketch.exact
        for q in (50.0, 95.0, 99.0):
            assert sketch.quantile(q) == exact_percentile(values, q)
        summary = sketch.summary()
        assert summary["mean_latency_s"] == pytest.approx(sum(values) / len(values))
        assert summary["max_latency_s"] == max(values)

    def test_million_samples_o1_memory_within_one_percent(self):
        # The acceptance bar: 1e6 samples, no sample list retained, and
        # p50/p95/p99 each within 1% of the exact percentile.
        rng = random.Random(7)
        values = [rng.lognormvariate(0.0, 1.0) for _ in range(1_000_000)]
        sketch = LatencySketch()
        for v in values:
            sketch.add(v)
        assert not sketch.exact  # the sample list was dropped: O(1) state
        assert sketch._samples is None
        assert sketch.count == len(values)
        ordered = sorted(values)
        for q in (50.0, 95.0, 99.0):
            exact = exact_percentile(ordered, q)
            estimate = sketch.quantile(q)
            assert abs(estimate - exact) / exact < 0.01, (q, estimate, exact)

    def test_untracked_quantile_raises_past_threshold(self):
        sketch = LatencySketch(exact_threshold=4)
        for v in range(10):
            sketch.add(float(v))
        with pytest.raises(KeyError, match="not tracked"):
            sketch.quantile(42.0)

    def test_summary_shape_matches_serve_metrics(self):
        assert set(LatencySketch().summary()) == {
            "mean_latency_s",
            "p50_latency_s",
            "p95_latency_s",
            "p99_latency_s",
            "max_latency_s",
        }


class TestWindowedRate:
    def test_trailing_window_rate(self):
        rate = WindowedRate(window_s=10.0, buckets=10)
        for t in range(10):
            rate.add(float(t))
        # All ten events are inside the window; the stream is 9s old.
        assert rate.rate(9.0) == pytest.approx(10.0 / 9.0)
        assert rate.total == 10

    def test_old_buckets_expire(self):
        rate = WindowedRate(window_s=10.0, buckets=10)
        rate.add(0.0, n=100)
        rate.add(50.0)
        assert rate.rate(50.0) == pytest.approx(1.0 / 10.0)

    def test_young_stream_uses_actual_age(self):
        rate = WindowedRate(window_s=10.0, buckets=10)
        rate.add(0.5, n=4)
        assert rate.rate(2.0) == pytest.approx(2.0)  # 4 events / 2s, not /10s

    def test_validation(self):
        with pytest.raises(ValueError):
            WindowedRate(window_s=0.0)
        with pytest.raises(ValueError):
            WindowedRate(buckets=0)


class TestTelemetryHub:
    def test_spans_nest_and_aggregate(self):
        clock = iter([0.0, 0.0, 1.0, 3.0, 6.0]).__next__
        tele = Telemetry(clock=clock)
        with tele.span("sweep"):
            with tele.span("point") as inner:
                pass
        assert inner.path == "sweep/point"
        assert inner.elapsed_s == pytest.approx(2.0)
        assert tele.span_totals["sweep/point"] == [1, pytest.approx(2.0)]
        assert tele.span_totals["sweep"] == [1, pytest.approx(6.0)]

    def test_counters_and_gauges(self):
        tele = Telemetry()
        tele.counter("hits")
        tele.counter("hits", 2)
        tele.gauge("depth", 3.0)
        tele.gauge("depth", 1.0)
        assert tele.counters == {"hits": 3}
        assert tele.gauges == {"depth": 1.0}

    def test_events_reach_sink_and_validate(self):
        sink = ListSink()
        tele = Telemetry(sink=sink)
        tele.event("cache_hit", scope="sweep", index=3)
        with tele.span("sweep"):
            pass
        tele.counter("points_executed", 5)
        tele.close()  # flushes final counter values
        assert [e["type"] for e in sink.events] == ["cache_hit", "span", "counter"]
        for event in sink.events:
            validate_event(event)
        assert sink.events[0]["v"] == EVENT_SCHEMA_VERSION

    def test_null_hub_is_inert(self):
        off = TELEMETRY_OFF
        assert not off.enabled
        with off.span("anything") as span:
            pass
        assert span.elapsed_s == 0.0
        off.counter("x")
        off.gauge("y", 1.0)
        off.event("cache_hit", scope="s")
        assert off.counters == {} and off.gauges == {}

    def test_stopwatch_always_measures(self):
        tele = Telemetry()
        assert tele.stopwatch() is tele
        watch = TELEMETRY_OFF.stopwatch()
        assert watch is not TELEMETRY_OFF and watch.enabled

    def test_as_telemetry_forms(self, tmp_path):
        hub = Telemetry()
        assert as_telemetry(hub) is hub
        assert as_telemetry(None) is TELEMETRY_OFF  # ambient default is off
        with telemetry_scope(hub):
            assert as_telemetry(None) is hub
            assert current_telemetry() is hub
        assert current_telemetry() is TELEMETRY_OFF
        path_hub = as_telemetry(tmp_path / "t.jsonl")
        assert path_hub.enabled
        path_hub.close()
        with pytest.raises(TypeError):
            as_telemetry(42)

    def test_context_manager_closes_sink(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with Telemetry(sink=JsonlSink(path)) as tele:
            tele.event("cache_miss", scope="sweep")
        events = read_events(path)
        assert [e["type"] for e in events] == ["cache_miss"]


class TestEventSchema:
    def test_make_event_envelope(self):
        event = make_event("cache_hit", 1.5, scope="sweep")
        assert event["v"] == EVENT_SCHEMA_VERSION
        assert event["type"] == "cache_hit"
        assert event["t"] == 1.5
        validate_event(event)

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError, match="unknown event type"):
            make_event("made_up", 0.0)
        with pytest.raises(ValueError, match="unknown event type"):
            validate_event({"v": 1, "type": "made_up", "t": 0.0})

    def test_missing_required_field_rejected(self):
        with pytest.raises(ValueError, match="missing"):
            validate_event({"v": 1, "type": "cache_hit", "t": 0.0})

    def test_extra_fields_allowed(self):
        validate_event(
            {"v": 1, "type": "cache_hit", "t": 0.0, "scope": "s", "extra": 1}
        )

    def test_version_mismatch_rejected(self):
        with pytest.raises(ValueError, match="schema version"):
            validate_event({"v": 999, "type": "cache_hit", "t": 0.0, "scope": "s"})


class TestExport:
    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = JsonlSink(path)
        sink.emit(make_event("sweep_start", 0.0, backend="serial", num_points=2))
        sink.emit(make_event("cache_hit", 0.1, scope="sweep"))
        sink.close()
        events = read_events(path)
        assert len(events) == 2
        assert events[0]["backend"] == "serial"
        with pytest.raises(ValueError, match="closed"):
            sink.emit({})

    def test_read_events_flags_bad_lines(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"v": 1, "type": "cache_hit", "t": 0.0}\n')  # no scope
        with pytest.raises(ValueError, match="bad.jsonl:1"):
            read_events(path)
        assert len(read_events(path, validate=False)) == 1
        path.write_text("not json\n")
        with pytest.raises(ValueError, match="unparseable"):
            read_events(path)
        with pytest.raises(ValueError):  # parse errors raise even unvalidated
            read_events(path, validate=False)
        path.write_text("")
        assert read_events(path) == []

    def test_render_prometheus(self):
        tele = Telemetry(clock=iter([0.0, 0.0, 2.0]).__next__)
        tele.counter("hits", 3)
        tele.gauge("depth", 1.5)
        with tele.span("sweep"):
            pass
        text = render_prometheus(tele)
        assert 'repro_counter_total{name="hits"} 3' in text
        assert 'repro_gauge{name="depth"} 1.5' in text
        assert 'repro_span_seconds_total{name="sweep"} 2.000000' in text
        assert 'repro_span_count_total{name="sweep"} 1' in text

    def test_summarize_and_render_report(self):
        events = [
            make_event("sweep_start", 0.0, backend="serial", num_points=2),
            make_event("cache_hit", 0.1, scope="sweep"),
            make_event("cache_miss", 0.2, scope="sweep"),
            make_event("span", 0.5, name="sweep/point", dur_s=0.25),
            make_event("job_submit", 0.6, job="j0", attempt=0),
            make_event("job_complete", 0.9, job="j0"),
            make_event("request_complete", 1.0, request=1, vt=1.0, latency_s=0.5),
            make_event("batch_simulate", 1.1, lanes=64, deduped=12, structures=2),
            make_event("counter", 1.2, name="points_executed", value=2),
        ]
        summary = summarize_events(events)
        assert summary["num_events"] == 9
        assert summary["duration_s"] == pytest.approx(1.2)
        assert summary["cache"]["sweep"] == {"hits": 1, "misses": 1}
        assert summary["jobs"]["submitted"] == 1
        assert summary["jobs"]["completed"] == 1
        assert summary["requests"]["completed"] == 1
        assert summary["batch"] == {
            "calls": 1,
            "lanes": 64,
            "deduped": 12,
            "structures": 2,
        }
        assert summary["spans"]["sweep/point"]["total_s"] == pytest.approx(0.25)
        report = render_report(summary)
        assert "sweep/point" in report
        assert "points_executed" in report
        assert "batch simulate" in report


class TestTelemetryNeverChangesResults:
    def test_sweep_results_byte_identical(self):
        sink = ListSink()
        with Telemetry(sink=sink) as tele:
            observed = run_sweep(tiny_spec(), telemetry=tele)
        plain = run_sweep(tiny_spec())
        assert observed.to_json(include_timing=False) == plain.to_json(
            include_timing=False
        )
        types = {e["type"] for e in sink.events}
        assert {"sweep_start", "point_start", "point_finish", "sweep_finish"} <= types
        for event in sink.events:
            validate_event(event)

    def test_serve_results_byte_identical(self):
        session = Session(model="3b", num_gpus=8, total_context=32 * 1024, num_steps=1)
        sink = ListSink()
        with Telemetry(sink=sink) as tele:
            observed = session.serve(("te_cp",), rate=4, duration_s=5, telemetry=tele)
        plain = Session(
            model="3b", num_gpus=8, total_context=32 * 1024, num_steps=1
        ).serve(("te_cp",), rate=4, duration_s=5)
        assert observed.to_json() == plain.to_json()
        types = {e["type"] for e in sink.events}
        assert {"request_enqueue", "request_dispatch", "request_complete"} <= types
        for event in sink.events:
            validate_event(event)
        completes = [e for e in sink.events if e["type"] == "request_complete"]
        assert len(completes) == observed.completed

    def test_serve_shed_and_scale_events_validate(self):
        from repro.serve import ServeSpec

        spec = ServeSpec(
            mix=("zeppelin",),
            arrival="closed",
            clients=64,
            think_time_s=0.05,
            duration_s=20.0,
            slo_s=2.0,
            admission="slo_aware",
            scale_policy="queue_depth",
            min_gpus=16,
            max_gpus=64,
        )

        sink = ListSink()
        with Telemetry(sink=sink) as tele:
            observed = Session(
                model="3b",
                num_gpus=16,
                total_context=32 * 1024,
                num_steps=1,
                seed=3,
                telemetry=tele,
            ).serve(spec)
        plain = Session(
            model="3b", num_gpus=16, total_context=32 * 1024, num_steps=1, seed=3
        ).serve(spec)
        assert observed.to_json() == plain.to_json()
        for event in sink.events:
            validate_event(event)
        sheds = [e for e in sink.events if e["type"] == "request_shed"]
        ups = [e for e in sink.events if e["type"] == "scale_up"]
        downs = [e for e in sink.events if e["type"] == "scale_down"]
        assert len(sheds) == observed.shed_count > 0
        assert len(ups) == observed.scale_up_count > 0
        assert len(downs) == observed.scale_down_count
        assert all(e["gpus"] in (16, 32, 64) for e in ups + downs)

    def test_cluster_sweep_job_events_and_identity(self, tmp_path):
        sink = ListSink()
        with Telemetry(sink=sink) as tele:
            observed = run_sweep(
                tiny_spec(),
                backend="cluster",
                jobs=2,
                backend_options={
                    "batch_system": "fake",
                    "workdir": tmp_path / "a",
                    "cache_dir": tmp_path / "a-cache",
                },
                telemetry=tele,
            )
        plain = run_sweep(
            tiny_spec(),
            backend="cluster",
            jobs=2,
            backend_options={
                "batch_system": "fake",
                "workdir": tmp_path / "b",
                "cache_dir": tmp_path / "b-cache",
            },
        )
        a = json.loads(observed.to_json(include_timing=False))
        b = json.loads(plain.to_json(include_timing=False))
        for doc in (a, b):
            doc["meta"].pop("workdir")
            doc["meta"].pop("point_cache_dir")
        assert a == b  # telemetry-on is byte-identical modulo paths/timing
        for event in sink.events:
            validate_event(event)
        types = {e["type"] for e in sink.events}
        assert {"round_start", "round_finish", "job_submit", "job_complete"} <= types
        submits = [e for e in sink.events if e["type"] == "job_submit"]
        completes = [e for e in sink.events if e["type"] == "job_complete"]
        assert len(submits) == len(completes) == 2  # one lifecycle per job

    def test_resilience_events_and_identity(self):
        sink = ListSink()
        with Telemetry(sink=sink) as tele:
            observed = Session(
                model="3b", num_gpus=8, total_context=32 * 1024, num_steps=1,
                telemetry=tele,
            ).run("zeppelin", perturbation={"mttf_s": 5.0}, num_iterations=8)
        plain = Session(
            model="3b", num_gpus=8, total_context=32 * 1024, num_steps=1
        ).run("zeppelin", perturbation={"mttf_s": 5.0}, num_iterations=8)
        assert observed.to_json() == plain.to_json()
        failures = [e for e in sink.events if e["type"] == "failure"]
        recoveries = [e for e in sink.events if e["type"] == "recovery"]
        assert len(failures) == observed.num_failures > 0
        assert len(recoveries) == observed.restart_count
        for event in sink.events:
            validate_event(event)

    def test_session_telemetry_flows_to_derived(self):
        tele = Telemetry()
        session = Session(model="3b", num_gpus=8, telemetry=tele)
        child = session.derive(num_gpus=16)
        assert child.telemetry is tele

    def test_meta_timing_isolated(self):
        sweep = run_sweep(tiny_spec())
        assert sweep.meta["timing"]["wall_time_s"] > 0
        assert "wall_time_s" not in sweep.meta
        doc = json.loads(sweep.to_json(include_timing=False))
        assert "timing" not in doc["meta"]


class TestObsCli:
    _SWEEP = [
        "sweep", "--model", "3b", "--gpus", "8", "--context-k", "32",
        "--steps", "1", "--strategies", "te_cp", "zeppelin", "--no-cache",
    ]

    def test_sweep_telemetry_flag_and_report(self, tmp_path, capsys):
        log = tmp_path / "tel.jsonl"
        assert main(self._SWEEP + ["--telemetry", str(log), "--json"]) == 0
        observed = json.loads(capsys.readouterr().out)
        events = read_events(log)  # validates every line against the schema
        types = {e["type"] for e in events}
        assert {"sweep_start", "sweep_finish", "point_start", "counter"} <= types
        assert main(self._SWEEP + ["--json"]) == 0
        plain = json.loads(capsys.readouterr().out)
        observed["meta"].pop("timing")
        plain["meta"].pop("timing")
        assert observed == plain  # telemetry never enters the result
        assert main(["obs", "report", str(log)]) == 0
        report = capsys.readouterr().out
        assert "sweep/point" in report and "event" in report

    def test_obs_report_rejects_bad_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("nope\n")
        assert main(["obs", "report", str(bad)]) == 2
        assert "unparseable" in capsys.readouterr().err

    def test_progress_requires_cluster_backend(self, capsys):
        assert main(self._SWEEP + ["--progress"]) == 2
        assert "--progress" in capsys.readouterr().err
