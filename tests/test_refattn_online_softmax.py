"""Tests for blockwise (online-softmax) attention."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.refattn.attention import causal_attention, full_attention, random_qkv
from repro.refattn.online_softmax import OnlineSoftmaxState, blockwise_causal_attention


class TestOnlineSoftmaxState:
    def test_single_block_equals_full_attention(self):
        q, k, v = random_qkv(8, heads=2, head_dim=4)
        state = OnlineSoftmaxState(heads=2, q_len=8, head_dim_v=4)
        state.update(q, k, v)
        np.testing.assert_allclose(state.output(), full_attention(q, k, v), atol=1e-10)

    def test_two_blocks_equal_one_block(self):
        q, k, v = random_qkv(10, heads=1, head_dim=6, seed=2)
        state = OnlineSoftmaxState(heads=1, q_len=10, head_dim_v=6)
        state.update(q, k[:, :4], v[:, :4])
        state.update(q, k[:, 4:], v[:, 4:])
        np.testing.assert_allclose(state.output(), full_attention(q, k, v), atol=1e-10)

    def test_block_order_does_not_matter(self):
        q, k, v = random_qkv(12, heads=2, head_dim=4, seed=4)
        a = OnlineSoftmaxState(heads=2, q_len=12, head_dim_v=4)
        a.update(q, k[:, :5], v[:, :5])
        a.update(q, k[:, 5:], v[:, 5:])
        b = OnlineSoftmaxState(heads=2, q_len=12, head_dim_v=4)
        b.update(q, k[:, 5:], v[:, 5:])
        b.update(q, k[:, :5], v[:, :5])
        np.testing.assert_allclose(a.output(), b.output(), atol=1e-10)

    def test_no_updates_gives_zero_output(self):
        state = OnlineSoftmaxState(heads=1, q_len=3, head_dim_v=2)
        np.testing.assert_allclose(state.output(), 0.0)

    def test_fully_masked_block_is_ignored(self):
        q, k, v = random_qkv(5, heads=1, head_dim=3, seed=6)
        state = OnlineSoftmaxState(heads=1, q_len=5, head_dim_v=3)
        state.update(q, k, v)
        reference = state.output().copy()
        state.update(q, k, v, mask=np.zeros((5, 5), dtype=bool))
        np.testing.assert_allclose(state.output(), reference, atol=1e-12)

    def test_invalid_dimensions_raise(self):
        with pytest.raises(ValueError):
            OnlineSoftmaxState(heads=0, q_len=1, head_dim_v=1)

    def test_wrong_query_shape_raises(self):
        state = OnlineSoftmaxState(heads=1, q_len=4, head_dim_v=2)
        q, k, v = random_qkv(5, heads=1, head_dim=2)
        with pytest.raises(ValueError):
            state.update(q, k, v)


class TestBlockwiseCausalAttention:
    @pytest.mark.parametrize("block_size", [1, 2, 3, 5, 16, 64])
    def test_matches_causal_attention(self, block_size):
        q, k, v = random_qkv(13, heads=2, head_dim=4, seed=11)
        out = blockwise_causal_attention(q, k, v, block_size=block_size)
        np.testing.assert_allclose(out, causal_attention(q, k, v), atol=1e-10)

    def test_query_offset_selects_slice_of_full_result(self):
        q, k, v = random_qkv(16, heads=2, head_dim=4, seed=13)
        full = causal_attention(q, k, v)
        out = blockwise_causal_attention(q[:, 6:10], k, v, block_size=4, query_offset=6)
        np.testing.assert_allclose(out, full[:, 6:10], atol=1e-10)

    def test_rejects_nonpositive_block_size(self):
        q, k, v = random_qkv(4)
        with pytest.raises(ValueError):
            blockwise_causal_attention(q, k, v, block_size=0)

    @settings(max_examples=25, deadline=None)
    @given(
        seq=st.integers(min_value=2, max_value=24),
        block=st.integers(min_value=1, max_value=8),
        seed=st.integers(min_value=0, max_value=100),
    )
    def test_property_blockwise_equals_monolithic(self, seq, block, seed):
        q, k, v = random_qkv(seq, heads=1, head_dim=4, seed=seed)
        out = blockwise_causal_attention(q, k, v, block_size=block)
        np.testing.assert_allclose(out, causal_attention(q, k, v), atol=1e-8)
