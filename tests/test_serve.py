"""Tests for repro.serve: arrivals, queueing, batching, metrics and the CLI."""

import json
import random

import pytest

from repro.api import Session
from repro.cli import CONFIG_ERROR_EXIT_CODE, build_parser, main
from repro.results import ServeResult, result_from_dict
from repro.serve.arrivals import (
    ClosedLoopArrivals,
    PoissonArrivals,
    Request,
    RequestCell,
    TraceArrivals,
    as_arrival,
    as_mix,
)
from repro.serve.driver import ServeSimulation
from repro.serve.metrics import QueueDepthTracker, percentile
from repro.serve.queue import (
    AdmissionContext,
    AdmissionPolicy,
    LegacyAdmissionAdapter,
    RequestQueue,
    as_admission,
)
from repro.serve.spec import ServeSpec


def tiny_session(seed=0, **overrides):
    """A fast serving session: 3B model, 16 GPUs, 32k context, one step."""
    params = dict(
        model="3b",
        num_gpus=16,
        dataset="arxiv",
        total_context=32 * 1024,
        num_steps=1,
        seed=seed,
    )
    params.update(overrides)
    return Session(**params)


MIX = {"zeppelin": 2.0, "te_cp": 1.0}


class TestArrivals:
    def test_same_seed_same_schedule(self):
        mix = as_mix(MIX)
        process = PoissonArrivals(rate=25.0)
        a = process.schedule(mix, duration_s=10.0, seed=7)
        b = process.schedule(mix, duration_s=10.0, seed=7)
        assert [r.arrival_s for r in a] == [r.arrival_s for r in b]
        assert [r.cell for r in a] == [r.cell for r in b]

    def test_different_seed_different_schedule(self):
        mix = as_mix(MIX)
        process = PoissonArrivals(rate=25.0)
        a = process.schedule(mix, duration_s=10.0, seed=0)
        b = process.schedule(mix, duration_s=10.0, seed=1)
        assert [r.arrival_s for r in a] != [r.arrival_s for r in b]

    def test_schedule_sorted_within_window_and_rids_sequential(self):
        schedule = PoissonArrivals(rate=50.0).schedule(as_mix("zeppelin"), 5.0, seed=3)
        times = [r.arrival_s for r in schedule]
        assert times == sorted(times)
        assert all(0 <= t < 5.0 for t in times)
        assert [r.rid for r in schedule] == list(range(len(schedule)))

    def test_rate_scales_request_count(self):
        mix = as_mix("zeppelin")
        low = PoissonArrivals(rate=2.0).schedule(mix, 30.0, seed=0)
        high = PoissonArrivals(rate=40.0).schedule(mix, 30.0, seed=0)
        assert len(high) > 5 * len(low)

    def test_mix_draws_follow_weights(self):
        mix = as_mix({"zeppelin": 9.0, "te_cp": 1.0})
        schedule = PoissonArrivals(rate=100.0).schedule(mix, 20.0, seed=0)
        strategies = [r.cell.strategy for r in schedule]
        assert set(strategies) == {"zeppelin", "te_cp"}
        assert strategies.count("zeppelin") > strategies.count("te_cp") * 3

    def test_trace_replay_once(self):
        trace = TraceArrivals([0.5, 1.5, 2.5])
        assert trace.arrival_times(2.0, random.Random(0)) == [0.5, 1.5]

    def test_trace_tiles_with_period(self):
        trace = TraceArrivals([0.0, 0.25], period=1.0)
        assert trace.arrival_times(2.0, random.Random(0)) == [0.0, 0.25, 1.0, 1.25]

    def test_trace_validation(self):
        with pytest.raises(ValueError):
            TraceArrivals([])
        with pytest.raises(ValueError):
            TraceArrivals([-1.0])
        with pytest.raises(ValueError):
            TraceArrivals([0.0, 2.0], period=1.5)

    def test_as_arrival_builds_poisson_by_default(self):
        assert as_arrival(None, rate=3.0).rate == 3.0
        assert as_arrival("poisson", rate=5.0).rate == 5.0
        with pytest.raises(ValueError):
            as_arrival("trace")

    def test_cell_rejects_unknown_override_and_bad_weight(self):
        with pytest.raises(ValueError, match="override"):
            RequestCell("zeppelin", overrides={"not_a_field": 1})
        with pytest.raises(ValueError, match="weight"):
            RequestCell("zeppelin", weight=0.0)

    def test_as_mix_forms(self):
        from_names = as_mix(("te_cp", "zeppelin"))
        assert [c.strategy for c in from_names.cells] == ["te_cp", "zeppelin"]
        from_mapping = as_mix({"zeppelin": 2.0})
        assert from_mapping.cells[0].weight == 2.0
        with pytest.raises(ValueError):
            as_mix(())


class TestQueueAndAdmission:
    @staticmethod
    def _request(rid, arrival_s, priority=0, strategy="zeppelin"):
        return Request(
            rid=rid,
            arrival_s=arrival_s,
            cell=RequestCell(strategy, priority=priority),
        )

    def test_fifo_pops_in_arrival_order(self):
        queue = RequestQueue("fifo", concurrency=1)
        for rid, t in ((0, 2.0), (1, 0.5), (2, 1.0)):
            queue.push(self._request(rid, t))
        assert [queue.pop().rid for _ in range(3)] == [1, 2, 0]

    def test_priority_pops_high_priority_first(self):
        queue = RequestQueue("priority", concurrency=1)
        queue.push(self._request(0, 0.0, priority=0))
        queue.push(self._request(1, 1.0, priority=5))
        queue.push(self._request(2, 2.0, priority=5))
        assert [queue.pop().rid for _ in range(3)] == [1, 2, 0]

    def test_can_dispatch_respects_concurrency(self):
        queue = RequestQueue("fifo", concurrency=2)
        queue.push(self._request(0, 0.0))
        assert queue.can_dispatch(in_flight=0)
        assert queue.can_dispatch(in_flight=1)
        assert not queue.can_dispatch(in_flight=2)
        queue.pop()
        assert not queue.can_dispatch(in_flight=0)  # nothing queued

    def test_take_matching_removes_only_matching_up_to_limit(self):
        queue = RequestQueue("fifo", concurrency=1)
        for rid in range(4):
            queue.push(self._request(rid, float(rid), strategy="zeppelin"))
        queue.push(self._request(9, 0.25, strategy="te_cp"))
        cell = RequestCell("zeppelin")
        taken = queue.take_matching(cell, limit=2)
        assert [r.rid for r in taken] == [0, 1]
        assert queue.depth == 3
        assert queue.pop().rid == 9  # the te_cp request was untouched

    def test_as_admission_and_validation(self):
        assert as_admission(None).name == "fifo"
        assert as_admission("priority").name == "priority"
        with pytest.raises(ValueError):
            RequestQueue("fifo", concurrency=0)


class TestMetrics:
    def test_percentile_interpolates(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 4.0
        assert percentile(values, 50) == 2.5
        assert percentile([], 99) == 0.0
        with pytest.raises(ValueError):
            percentile(values, 101)

    def test_percentile_rejects_nan(self):
        with pytest.raises(ValueError, match="NaN"):
            percentile([1.0, float("nan"), 3.0], 50)

    def test_percentile_handles_infinities(self):
        values = [1.0, 2.0, float("inf")]
        # p50 lands exactly on the middle rank: no inf * 0.0 -> nan blowup.
        assert percentile(values, 50) == 2.0
        assert percentile(values, 100) == float("inf")
        assert percentile([float("-inf"), 0.0, 1.0], 0) == float("-inf")

    def test_queue_depth_tracker_integrates(self):
        tracker = QueueDepthTracker()
        tracker.sample(1.0, 2)  # depth 0 over [0, 1)
        tracker.sample(3.0, 0)  # depth 2 over [1, 3)
        assert tracker.max_depth == 2
        assert tracker.mean_depth(4.0) == pytest.approx(1.0)  # 4 depth-seconds / 4
        assert tracker.timeline() == ((0.0, 0), (1.0, 2), (3.0, 0))

    def test_queue_depth_tracker_rejects_time_backwards(self):
        tracker = QueueDepthTracker()
        tracker.sample(3.0, 1)
        with pytest.raises(ValueError, match="time went backwards"):
            tracker.sample(2.0, 1)
        # Equal timestamps are fine: multiple events at one virtual instant.
        tracker.sample(3.0, 2)
        assert tracker.max_depth == 2


class TestServeSimulation:
    def test_no_request_starts_before_arrival_and_all_complete(self):
        sim = ServeSimulation(tiny_session(), MIX, rate=30.0, duration_s=5.0)
        result = sim.run()
        assert result.completed == result.num_requests == len(sim.requests)
        for request in sim.requests:
            assert request.start_s is not None and request.finish_s is not None
            assert request.start_s >= request.arrival_s
            assert request.finish_s >= request.start_s

    def test_concurrency_limit_never_exceeded(self):
        # A large cache-hit cost keeps executions long so the limit binds.
        sim = ServeSimulation(
            tiny_session(),
            MIX,
            rate=40.0,
            duration_s=4.0,
            concurrency=2,
            max_batch=1,
            cache_hit_cost_s=0.2,
        )
        sim.run()
        events = []
        for batch in sim.executions:
            events.append((batch.start_s, 1))
            events.append((batch.finish_s, -1))
        active = peak = 0
        # A finish at time t frees its slot before a start at the same t.
        for _, delta in sorted(events, key=lambda e: (e[0], e[1])):
            active += delta
            peak = max(peak, active)
        assert peak <= 2
        assert len(sim.executions) > 2  # the limit actually bound

    def test_batcher_coalesces_same_cell_requests(self):
        sim = ServeSimulation(
            tiny_session(),
            {"zeppelin": 1.0},
            rate=50.0,
            duration_s=4.0,
            concurrency=1,
            cache=False,
            max_batch=8,
        )
        result = sim.run()
        sizes = [batch.size for batch in sim.executions]
        assert max(sizes) > 1  # bursts were coalesced
        assert all(size <= 8 for size in sizes)
        assert result.batched_requests == sum(s - 1 for s in sizes)
        assert result.simulations == len(sim.executions)

    def test_priority_admission_never_overtaken_by_lower_priority(self):
        mix = (
            RequestCell("te_cp", weight=1.0, priority=0),
            RequestCell("zeppelin", weight=1.0, priority=5),
        )
        sim = ServeSimulation(
            tiny_session(),
            mix,
            rate=40.0,
            duration_s=3.0,
            admission="priority",
            concurrency=1,
            max_batch=1,
            cache_hit_cost_s=0.15,
        )
        sim.run()
        for batch in sim.executions:
            head = batch.requests[0]
            waiting = [
                r
                for r in sim.requests
                if r.arrival_s <= batch.start_s and r.start_s > batch.start_s
            ]
            assert all(w.priority <= head.priority for w in waiting)

    def test_cache_is_causal_no_answer_before_producing_simulation(self):
        # A dense single-cell burst: the first dispatch simulates, everyone
        # else must join that in-flight execution (or hit the cache after it
        # finishes) — nobody may complete before the producing simulation's
        # virtual finish.
        sim = ServeSimulation(
            tiny_session(),
            {"zeppelin": 1.0},
            rate=50.0,
            duration_s=2.0,
            concurrency=4,
            max_batch=1,
        )
        sim.run()
        first = sim.executions[0]
        assert first.requests[0].served_by == "simulate"
        assert min(r.finish_s for r in sim.requests) >= first.finish_s
        joined = [b for b in sim.executions if b.requests[0].served_by == "batch"]
        hits = [b for b in sim.executions if b.cache_hit]
        assert joined and hits  # both regimes occurred
        for batch in joined:
            assert batch.start_s < first.finish_s <= batch.finish_s
        for batch in hits:
            assert batch.start_s >= first.finish_s

    def test_warm_cache_executes_fewer_simulations_than_cold(self):
        warm = ServeSimulation(
            tiny_session(), MIX, rate=25.0, duration_s=6.0, cache=True
        ).run()
        cold = ServeSimulation(
            tiny_session(), MIX, rate=25.0, duration_s=6.0, cache=False
        ).run()
        # Same schedule either way; the cache collapses repeated cells to one
        # simulation each while the cold run pays per batch.
        assert warm.num_requests == cold.num_requests
        assert warm.simulations == len(MIX)
        assert cold.simulations > warm.simulations
        assert warm.cache_hits > 0
        assert warm.cache_hit_rate == pytest.approx(
            warm.cache_hits / warm.completed
        )

    def test_serve_reuses_session_plan_cache(self):
        session = tiny_session()
        session.serve(MIX, rate=10.0, duration_s=2.0)
        warmed = session.plan_cache_size
        assert warmed > 0
        # A second serve over the same cells replans nothing.
        session.serve(MIX, rate=10.0, duration_s=2.0)
        assert session.plan_cache_size == warmed

    def test_slo_splits_goodput_from_throughput(self):
        session = tiny_session()
        result = session.serve(
            MIX, rate=30.0, duration_s=4.0, slo_s=1e-9, cache=False
        )
        assert result.goodput_rps < result.throughput_rps
        no_slo = session.serve(MIX, rate=30.0, duration_s=4.0, cache=False)
        assert no_slo.goodput_rps == no_slo.throughput_rps

    def test_trace_arrival_by_name_through_session_serve(self):
        result = tiny_session().serve(
            {"zeppelin": 1.0},
            arrival="trace",
            trace_times=(0.0, 0.5, 1.0),
            duration_s=2.0,
        )
        assert result.arrival == "trace"
        assert result.num_requests == 3

    def test_deterministic_across_fresh_sessions(self):
        a = tiny_session().serve(MIX, rate=20.0, duration_s=4.0)
        b = tiny_session().serve(MIX, rate=20.0, duration_s=4.0)
        assert a.to_json() == b.to_json()
        c = tiny_session(seed=1).serve(MIX, rate=20.0, duration_s=4.0)
        assert a.to_json() != c.to_json()

    def test_unknown_strategy_fails_before_simulating(self):
        with pytest.raises((ValueError, KeyError)):
            ServeSimulation(tiny_session(), {"warp_drive": 1.0}, duration_s=1.0)

    def test_invalid_knobs_rejected(self):
        session = tiny_session()
        with pytest.raises(ValueError):
            ServeSimulation(session, MIX, duration_s=0.0)
        with pytest.raises(ValueError):
            ServeSimulation(session, MIX, duration_s=1.0, slo_s=-1.0)
        with pytest.raises(ValueError):
            ServeSimulation(session, MIX, duration_s=1.0, max_batch=0)


class TestServeResult:
    def test_to_dict_to_json_round_trip(self):
        result = tiny_session().serve(MIX, rate=20.0, duration_s=3.0, slo_s=0.5)
        rebuilt = result_from_dict(json.loads(result.to_json()))
        assert isinstance(rebuilt, ServeResult)
        assert rebuilt.to_dict() == result.to_dict()
        assert rebuilt.to_json() == result.to_json()

    def test_reported_metric_keys(self):
        data = tiny_session().serve(MIX, rate=10.0, duration_s=2.0).to_dict()
        for key in (
            "throughput_rps",
            "goodput_rps",
            "p50_latency_s",
            "p95_latency_s",
            "p99_latency_s",
            "cache_hit_rate",
            "mean_queue_depth",
            "max_queue_depth",
            "queue_depth_timeline",
        ):
            assert key in data

    def test_config_and_mix_are_frozen(self):
        mix = (RequestCell("zeppelin", overrides={"total_context": 16 * 1024}),)
        result = tiny_session().serve(mix, rate=10.0, duration_s=2.0)
        with pytest.raises(TypeError):
            result.config["model"] = "30b"
        with pytest.raises(TypeError):
            result.mix[0]["weight"] = 99.0
        # The freeze is deep: nested override dicts are immutable too.
        with pytest.raises(TypeError):
            result.mix[0]["overrides"]["total_context"] = 999
        json.loads(result.to_json())  # frozen views still serialise


SERVE_CLI = [
    "serve",
    "--model", "3b",
    "--context-k", "32",
    "--steps", "1",
    "--rate", "20",
    "--duration", "3",
]


class TestServeCli:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.rate == 10.0
        assert args.duration == 60.0
        assert args.arrival == "poisson"
        assert args.admission == "fifo"
        assert args.concurrency == 4
        assert args.mix is None
        assert args.json is False

    def test_serve_json_reports_metrics(self, capsys):
        assert main(SERVE_CLI + ["--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["num_requests"] == data["completed"] > 0
        assert data["throughput_rps"] > 0
        assert "p99_latency_s" in data and "cache_hit_rate" in data

    def test_serve_json_deterministic(self, capsys):
        assert main(SERVE_CLI + ["--seed", "0", "--json"]) == 0
        first = capsys.readouterr().out
        assert main(SERVE_CLI + ["--seed", "0", "--json"]) == 0
        assert capsys.readouterr().out == first

    def test_serve_table_output(self, capsys):
        assert main(SERVE_CLI + ["--mix", "zeppelin=3", "te_cp"]) == 0
        out = capsys.readouterr().out
        assert "p99_latency_s" in out
        assert "simulations" in out

    def test_unknown_mix_strategy_is_config_error(self, capsys):
        assert main(SERVE_CLI + ["--mix", "warp"]) == CONFIG_ERROR_EXIT_CODE
        assert "unknown strategy" in capsys.readouterr().err

    def test_trace_arrival_requires_file(self, capsys):
        code = main(SERVE_CLI + ["--arrival", "trace"])
        assert code == CONFIG_ERROR_EXIT_CODE
        assert "--trace-file" in capsys.readouterr().err

    def test_trace_arrival_from_file(self, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        trace.write_text(json.dumps([0.0, 0.5, 1.0, 1.5]))
        code = main(SERVE_CLI + ["--arrival", "trace", "--trace-file", str(trace), "--json"])
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["num_requests"] == 4
        assert data["arrival"] == "trace"

    def test_list_shows_serving_registries(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "arrival processes:" in out
        assert "admission policies:" in out
        assert "scale policies:" in out
        assert "poisson" in out and "trace" in out and "closed" in out
        assert "fifo" in out and "priority" in out and "slo_aware" in out
        assert "queue_depth" in out
        assert "fig14_serving" in out

    def test_closed_loop_autoscale_cli_json(self, capsys):
        cli = SERVE_CLI + [
            "--arrival", "closed",
            "--clients", "8",
            "--think-time", "0.2",
            "--slo", "3",
            "--admission", "slo_aware",
            "--scale-policy", "queue_depth",
            "--max-gpus", "32",
            "--json",
        ]
        assert main(cli) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["arrival"] == "closed"
        assert data["admission"] == "slo_aware"
        assert data["scale_policy"] == "queue_depth"
        assert data["capacity_timeline"][0] == [0.0, 16]
        assert data["completed"] + data["shed_count"] == data["num_requests"]


class TestServeSpec:
    def test_spec_and_kwarg_shim_byte_identical(self):
        spec = ServeSpec(mix=MIX, rate=20.0, duration_s=4.0, slo_s=1.0)
        via_spec = tiny_session().serve(spec)
        via_kwargs = tiny_session().serve(MIX, rate=20.0, duration_s=4.0, slo_s=1.0)
        assert via_spec.to_json() == via_kwargs.to_json()

    def test_spec_rejects_extra_knobs(self):
        spec = ServeSpec(duration_s=1.0)
        with pytest.raises(ValueError, match="knobs"):
            tiny_session().serve(spec, rate=5.0)
        with pytest.raises(ValueError, match="not both"):
            ServeSimulation(tiny_session(), MIX, spec=spec)

    def test_validation_on_construction(self):
        with pytest.raises(ValueError):
            ServeSpec(duration_s=0.0)
        with pytest.raises(ValueError):
            ServeSpec(slo_s=-1.0)
        with pytest.raises(ValueError):
            ServeSpec(coalesce_s=-0.1)
        with pytest.raises(ValueError):
            ServeSpec(clients=0)
        with pytest.raises(ValueError, match="min_gpus"):
            ServeSpec(min_gpus=64, max_gpus=16)
        with pytest.raises(TypeError):
            ServeSpec(bogus_knob=1)

    def test_canonical_identity_and_replace(self):
        spec = ServeSpec(mix=MIX, arrival="closed", clients=8)
        again = ServeSpec(mix=MIX, arrival="closed", clients=8)
        assert spec.canonical_json() == again.canonical_json()
        bigger = spec.replace(clients=16)
        assert bigger.clients == 16
        assert bigger.canonical_json() != spec.canonical_json()
        data = spec.to_dict()
        assert data["arrival"] == "closed"
        assert data["admission"] == "fifo"
        json.dumps(data)  # JSON-safe

    def test_component_instances_collapse_to_names(self):
        spec = ServeSpec(arrival=PoissonArrivals(rate=3.0), admission="priority")
        assert spec.to_dict()["arrival"] == "poisson"
        assert spec.build_arrival().rate == 3.0


class TestClosedLoop:
    def test_runs_are_byte_identical_per_seed(self):
        spec = ServeSpec(
            mix=MIX, arrival="closed", clients=8, think_time_s=0.3, duration_s=6.0
        )
        a = tiny_session().serve(spec)
        b = tiny_session().serve(spec)
        assert a.arrival == "closed"
        assert a.to_json() == b.to_json()
        c = tiny_session(seed=1).serve(spec)
        assert a.to_json() != c.to_json()

    def test_clients_pace_on_their_own_completions(self):
        sim = ServeSimulation(
            tiny_session(),
            spec=ServeSpec(
                mix={"zeppelin": 1.0},
                arrival="closed",
                clients=4,
                think_time_s=0.2,
                duration_s=5.0,
            ),
        )
        sim.run()
        assert sim.requests and all(r.client is not None for r in sim.requests)
        by_client = {}
        for request in sim.requests:
            by_client.setdefault(request.client, []).append(request)
        assert len(by_client) <= 4
        for series in by_client.values():
            # A client's next request is issued only after its previous one
            # finished (or was shed) — never overlapping itself.
            for prev, nxt in zip(series, series[1:]):
                assert prev.finish_s is None or nxt.arrival_s > prev.finish_s
        # No arrivals past the horizon; completions may drain later.
        assert all(r.arrival_s < 5.0 for r in sim.requests)

    def test_pool_size_scales_offered_load(self):
        small = tiny_session().serve(
            ServeSpec(mix=MIX, arrival="closed", clients=2, duration_s=6.0)
        )
        large = tiny_session().serve(
            ServeSpec(mix=MIX, arrival="closed", clients=32, duration_s=6.0)
        )
        assert large.num_requests > 3 * small.num_requests

    def test_closed_arrival_has_no_precomputed_schedule(self):
        process = ClosedLoopArrivals(clients=3, think_time_s=0.5)
        assert process.schedule(as_mix(MIX), 5.0, seed=0) == ()
        clients = process.clients(as_mix(MIX), seed=0)
        assert [c.cid for c in clients] == [0, 1, 2]
        with pytest.raises(NotImplementedError):
            process.arrival_times(5.0, random.Random(0))


class TestSloAwareAdmission:
    TIGHT = ServeSpec(
        mix={"zeppelin": 1.0},
        arrival="closed",
        think_time_s=0.05,
        duration_s=6.0,
        slo_s=0.5,
        admission="slo_aware",
        clients=4,  # overridden per test via replace()
    )

    def test_shed_requests_never_execute_and_are_counted(self):
        result = tiny_session().serve(self.TIGHT.replace(clients=32))
        assert result.shed_count > 0
        assert result.completed + result.shed_count == result.num_requests
        assert result.admission == "slo_aware"

    def test_shed_rate_monotone_under_rising_load(self):
        rates = []
        for clients in (2, 16, 96):
            result = tiny_session().serve(self.TIGHT.replace(clients=clients))
            rates.append(result.shed_count / result.num_requests)
        assert rates == sorted(rates)
        assert rates[-1] > rates[0]

    def test_goodput_counts_only_slo_meeting_completions(self):
        result = tiny_session().serve(self.TIGHT.replace(clients=16))
        assert result.goodput_rps <= result.throughput_rps

    def test_unseen_cell_admitted_optimistically(self):
        policy = as_admission("slo_aware")
        ctx = AdmissionContext(slo_s=0.1, cost_estimate=lambda cell: None)
        request = Request(rid=0, arrival_s=0.0, cell=RequestCell("zeppelin"))
        assert policy.admit(request, ctx)
        # Known-too-expensive cell is shed.
        ctx = AdmissionContext(slo_s=0.1, cost_estimate=lambda cell: 5.0)
        assert not policy.admit(request, ctx)


class TestLegacyAdmissionShim:
    class OldStyle(AdmissionPolicy):
        name = "old_style"

        def key(self, request):  # pre-AdmissionContext signature
            return (request.arrival_s, request.rid)

    def test_old_signature_wrapped_with_deprecation_warning(self):
        with pytest.warns(DeprecationWarning, match="key\\(request\\)"):
            policy = as_admission(self.OldStyle())
        assert isinstance(policy, LegacyAdmissionAdapter)
        assert policy.name == "old_style"
        request = Request(rid=3, arrival_s=1.5, cell=RequestCell("zeppelin"))
        assert policy.key(request, AdmissionContext()) == (1.5, 3)
        assert policy.admit(request, AdmissionContext())

    def test_wrapped_policy_serves_a_run(self):
        with pytest.warns(DeprecationWarning):
            result = tiny_session().serve(
                MIX, rate=10.0, duration_s=2.0, admission=self.OldStyle()
            )
        assert result.admission == "old_style"
        assert result.completed == result.num_requests

    def test_new_style_policies_are_not_wrapped(self):
        assert not isinstance(as_admission("fifo"), LegacyAdmissionAdapter)
        assert not isinstance(as_admission("slo_aware"), LegacyAdmissionAdapter)


class TestDeadlineBatcher:
    def test_coalescing_grows_batches(self):
        base = ServeSpec(mix={"zeppelin": 1.0}, rate=20.0, duration_s=4.0)
        held = tiny_session().serve(base.replace(coalesce_s=0.25))
        eager = tiny_session().serve(base)
        assert held.batched_requests > eager.batched_requests
        assert held.completed == held.num_requests

    def test_deadline_slack_caps_the_hold(self):
        # With a near-zero SLO the slack is ~0 once the cell's cost estimate
        # exists, so far fewer dispatches may be held than the window alone
        # would allow (the estimate-free warmup still coalesces optimistically).
        base = ServeSpec(mix={"zeppelin": 1.0}, rate=20.0, duration_s=4.0)
        held = tiny_session().serve(base.replace(coalesce_s=0.25))
        tight = tiny_session().serve(base.replace(coalesce_s=0.25, slo_s=1e-9))
        assert tight.batched_requests < held.batched_requests
        assert tight.completed == tight.num_requests


class TestAutoscale:
    SPEC = ServeSpec(
        mix={"zeppelin": 1.0},
        arrival="closed",
        clients=64,
        think_time_s=0.05,
        duration_s=20.0,
        scale_policy="queue_depth",
        min_gpus=16,
        max_gpus=64,
    )

    def test_grow_shrink_round_trip_returns_to_baseline(self):
        result = tiny_session(seed=3).serve(self.SPEC)
        timeline = result.capacity_timeline
        assert timeline[0] == (0.0, 16)
        assert timeline[-1][1] == 16  # back at baseline capacity
        assert max(gpus for _, gpus in timeline) > 16  # it actually grew
        assert result.scale_up_count == result.scale_down_count >= 1
        assert result.scale_policy == "queue_depth"

    def test_autoscale_runs_are_byte_identical(self):
        a = tiny_session(seed=3).serve(self.SPEC)
        b = tiny_session(seed=3).serve(self.SPEC)
        assert a.to_json() == b.to_json()

    def test_capacity_moves_on_doubling_ladder(self):
        result = tiny_session(seed=3).serve(self.SPEC)
        gpus = [g for _, g in result.capacity_timeline]
        assert set(gpus) <= {16, 32, 64}
        for prev, nxt in zip(gpus, gpus[1:]):
            assert nxt in (prev * 2, prev // 2)  # one rung per step

    def test_fixed_capacity_without_policy(self):
        result = tiny_session().serve(
            ServeSpec(mix={"zeppelin": 1.0}, rate=10.0, duration_s=2.0)
        )
        assert result.scale_policy is None
        assert result.capacity_timeline == ()
        assert result.scale_up_count == result.scale_down_count == 0

    def test_bounds_validation(self):
        with pytest.raises(ValueError, match="ladder|bounds"):
            tiny_session().serve(
                self.SPEC.replace(min_gpus=32, max_gpus=64)
            )  # base 16 below the floor
        with pytest.raises(ValueError, match="multiple"):
            tiny_session().serve(self.SPEC.replace(max_gpus=20))
