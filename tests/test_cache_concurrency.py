"""Racing writers on a shared ResultCache: wrong results never, misses only.

The cluster backend points every batch worker at one cache directory over a
network mount, so the cache must survive concurrent writers of the same key,
readers racing a writer, and garbage written next to (or instead of) real
entries.  These tests hammer one directory from several processes and assert
the only observable failure mode is a miss.
"""

import json
import multiprocessing
import os

from repro.exec.cache import ResultCache, point_key
from repro.exec.spec import SweepPoint

KEYS = 5
ROUNDS = 40


def _point(i):
    return SweepPoint({"model": "3b", "strategy": "te_cp", "seed": i})


def _expected(i):
    return {"which": i, "tokens_per_second": 1000.0 + i}


def _hammer(args):
    """One racing process: interleave puts, reads and garbage writes.

    Returns the number of wrong reads observed (must be 0): a get() may miss,
    but whatever it returns for key i must be exactly ``_expected(i)``.
    """
    root, worker_id = args
    cache = ResultCache(root)
    keys = [point_key(_point(i)) for i in range(KEYS)]
    wrong = 0
    for round_no in range(ROUNDS):
        i = (round_no + worker_id) % KEYS
        cache.put(keys[i], _point(i).to_dict(), _expected(i))
        # One writer bypasses atomicity entirely and scribbles garbage over
        # a final path byte by byte — a reader must treat any intermediate
        # state as a miss, then the next put() repairs the entry.
        if worker_id == 0 and round_no % 10 == 5:
            victim = cache._path(keys[i])
            with victim.open("w", encoding="utf-8") as handle:
                for ch in '{"result": {"tru':
                    handle.write(ch)
                    handle.flush()
        got = cache.get(keys[(round_no * 3 + worker_id) % KEYS])
        j = (round_no * 3 + worker_id) % KEYS
        if got is not None and got != _expected(j):
            wrong += 1
    return wrong


class TestConcurrentCacheWriters:
    def test_racing_processes_never_read_wrong_results(self, tmp_path):
        root = tmp_path / "shared_cache"
        ctx = multiprocessing.get_context("fork")
        with ctx.Pool(4) as pool:
            wrong_counts = pool.map(_hammer, [(str(root), w) for w in range(4)])
        assert wrong_counts == [0, 0, 0, 0]
        # After the dust settles every key converges to the correct entry
        # once re-put (garbage overwrites may have left some keys corrupt —
        # which must read as a miss, not as data).
        cache = ResultCache(root)
        for i in range(KEYS):
            key = point_key(_point(i))
            assert cache.get(key) in (None, _expected(i))
            cache.put(key, _point(i).to_dict(), _expected(i))
            assert cache.get(key) == _expected(i)
        # No temp files leaked by any racing writer.
        assert not [p for p in root.iterdir() if p.name.endswith(".tmp")]

    def test_duplicate_writers_same_key(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        key = point_key(_point(0))
        for _ in range(20):
            cache.put(key, _point(0).to_dict(), _expected(0))
        assert cache.get(key) == _expected(0)
        assert len(cache) == 1


class TestCorruptEntriesAreMisses:
    def test_truncated_entry(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = point_key(_point(1))
        cache.put(key, _point(1).to_dict(), _expected(1))
        path = cache._path(key)
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        assert cache.get(key) is None

    def test_wrong_shape_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = point_key(_point(2))
        for garbage in ("[1, 2, 3]", '"a string"', '{"no_result": 1}',
                        '{"result": 5}', '{"result": [1]}', ""):
            cache._path(key).parent.mkdir(parents=True, exist_ok=True)
            cache._path(key).write_text(garbage)
            assert cache.get(key) is None
        # A proper put() repairs the slot.
        cache.put(key, _point(2).to_dict(), _expected(2))
        assert cache.get(key) == _expected(2)

    def test_missing_directory_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "missing" / "deeper")
        assert cache.get(point_key(_point(3))) is None
        assert len(cache) == 0

    def test_failed_write_is_swallowed(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path)
        monkeypatch.setattr(os, "replace", _raise_oserror)
        cache.put(point_key(_point(4)), _point(4).to_dict(), _expected(4))
        assert cache.get(point_key(_point(4))) is None
        assert not [p for p in tmp_path.iterdir() if p.name.endswith(".tmp")]


def _raise_oserror(*args, **kwargs):
    raise OSError("disk full")


class TestCacheEntryFormat:
    def test_entry_carries_salt_and_point(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = point_key(_point(0))
        cache.put(key, _point(0).to_dict(), _expected(0))
        entry = json.loads(cache._path(key).read_text())
        assert set(entry) == {"salt", "point", "result"}
        assert entry["result"] == _expected(0)
