"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.cluster.presets import cluster_a, cluster_b, cluster_c, make_cluster
from repro.core.strategy import StrategyContext
from repro.data.sampler import Batch
from repro.model.spec import get_model


@pytest.fixture(scope="session")
def cluster_a2():
    """Cluster A with two nodes (16 A800 GPUs, 4 NICs per node)."""
    return cluster_a(num_nodes=2)


@pytest.fixture(scope="session")
def cluster_a4():
    """Cluster A with four nodes (32 GPUs)."""
    return cluster_a(num_nodes=4)


@pytest.fixture(scope="session")
def cluster_b2():
    """Cluster B with two nodes (16 H800 GPUs, 8 NICs per node)."""
    return cluster_b(num_nodes=2)


@pytest.fixture(scope="session")
def cluster_c2():
    """Cluster C with two nodes (16 H200 GPUs, 8x400G NICs per node)."""
    return cluster_c(num_nodes=2)


@pytest.fixture(scope="session")
def tiny_cluster():
    """A deliberately small cluster (2 nodes x 4 GPUs, 2 NICs/node)."""
    return make_cluster(
        name="tiny",
        num_nodes=2,
        gpus_per_node=4,
        device_type="A800",
        nics_per_node=2,
        nic_gbps=200.0,
        intra_node_gBps=400.0,
    )


@pytest.fixture(scope="session")
def spec_7b():
    return get_model("7b")


@pytest.fixture(scope="session")
def spec_3b():
    return get_model("3b")


@pytest.fixture(scope="session")
def spec_moe():
    return get_model("8x550m")


@pytest.fixture
def mixed_batch():
    """A variable-length batch mixing local, intra-node and inter-node scales.

    Totals 61,248 tokens — inside the 65,536-token budget of a 16-GPU cluster
    at 4k tokens per GPU; the 32k sequence reaches the inter-node threshold.
    """
    return Batch.from_lengths([32768, 12288, 8192, 4096, 2048, 1024, 512, 320])


@pytest.fixture
def short_batch():
    """A batch of only short sequences (fits entirely in the local zone)."""
    return Batch.from_lengths([1024, 896, 768, 640, 512, 384, 320, 256, 1200, 1500])


@pytest.fixture
def context_16(cluster_a2, spec_7b):
    """Strategy context: 7B model, 16 GPUs, 4k tokens per GPU."""
    return StrategyContext(
        cluster=cluster_a2, spec=spec_7b, token_budget=4096, tensor_parallel=1
    )


@pytest.fixture
def context_3b_16(cluster_a2, spec_3b):
    """Strategy context: 3B model, 16 GPUs, 4k tokens per GPU."""
    return StrategyContext(
        cluster=cluster_a2, spec=spec_3b, token_budget=4096, tensor_parallel=1
    )
