"""Tests for repro.analysis: the AST determinism & invariant linter."""

import io
import json
import shutil
from pathlib import Path

import pytest

from repro.analysis import AnalysisUsageError, analyze_paths
from repro.analysis.driver import execute
from repro.analysis.model import SourceFile, module_name_for
from repro.registry import available_rules

FIXTURES = Path(__file__).resolve().parent / "fixtures" / "analysis"
BAD = FIXTURES / "bad"
GOOD = FIXTURES / "good"
SRC = Path(__file__).resolve().parent.parent / "src"

# rule id -> the fixture files exercising it (R001 needs a table + a plugin).
RULE_FIXTURES = {
    "D001": ("d001.py",),
    "D002": ("d002.py",),
    "D003": ("d003.py",),
    "E001": ("e001.py",),
    "R001": ("r001_registry.py", "r001_plugin.py"),
    "S001": ("s001.py",),
}


class TestRuleFixtures:
    @pytest.mark.parametrize("rule_id", sorted(RULE_FIXTURES))
    def test_bad_fixture_flagged(self, rule_id):
        paths = [BAD / name for name in RULE_FIXTURES[rule_id]]
        report = analyze_paths(paths, rules=[rule_id])
        assert report.findings, f"{rule_id} missed its bad fixture"
        assert {f.rule for f in report.findings} == {rule_id}
        for finding in report.findings:
            assert finding.line > 0
            assert finding.path.endswith(".py")

    @pytest.mark.parametrize("rule_id", sorted(RULE_FIXTURES))
    def test_good_fixture_clean(self, rule_id):
        paths = [GOOD / name for name in RULE_FIXTURES[rule_id]]
        report = analyze_paths(paths, rules=[rule_id])
        assert report.clean, [f.render() for f in report.findings]

    def test_bad_tree_triggers_every_rule(self):
        report = analyze_paths([BAD])
        assert {f.rule for f in report.findings} == set(RULE_FIXTURES)

    def test_good_tree_clean_under_all_rules(self):
        report = analyze_paths([GOOD])
        assert report.clean, [f.render() for f in report.findings]


class TestSuppression:
    def test_pragma_suppresses_on_its_line(self):
        report = analyze_paths([GOOD / "suppressed.py"], rules=["D001"])
        assert report.clean
        assert len(report.suppressed) == 1
        assert report.suppressed[0].rule == "D001"

    def test_pragma_is_rule_specific(self, tmp_path):
        target = tmp_path / "wrong_rule.py"
        target.write_text(
            "import time\n\n\n"
            "def stamp():\n"
            "    return time.time()  # repro: allow(D002) wrong rule\n"
        )
        report = analyze_paths([target], rules=["D001"])
        assert not report.clean

    def test_star_pragma_suppresses_everything(self, tmp_path):
        target = tmp_path / "starred.py"
        target.write_text(
            "import time\n\n\n"
            "def stamp():\n"
            "    return time.time()  # repro: allow(*) blanket\n"
        )
        report = analyze_paths([target])
        assert report.clean
        assert report.suppressed


class TestDriverSurface:
    def test_json_schema(self):
        stream = io.StringIO()
        rc = execute([str(BAD / "d001.py")], json_output=True, stream=stream)
        assert rc == 1
        doc = json.loads(stream.getvalue())
        assert doc["version"] == 1
        assert doc["clean"] is False
        assert doc["files_checked"] == 1
        assert set(doc["rules"]) == {r.upper() for r in available_rules()}
        for finding in doc["findings"]:
            assert set(finding) == {"rule", "path", "line", "col", "message"}
            assert isinstance(finding["line"], int) and finding["line"] > 0
        assert doc["suppressed"] == []

    def test_text_output_has_file_line_anchors(self):
        stream = io.StringIO()
        rc = execute([str(BAD / "d003.py")], stream=stream)
        assert rc == 1
        first = stream.getvalue().splitlines()[0]
        path, line, col, rule = first.split(":")[0:3] + [first.split(" ")[1]]
        assert path.endswith("d003.py")
        assert int(line) > 0 and int(col) >= 0
        assert rule == "D003"

    def test_clean_run_exits_zero(self):
        stream = io.StringIO()
        assert execute([str(GOOD / "d001.py")], stream=stream) == 0
        assert "clean" in stream.getvalue()

    def test_unknown_rule_exits_two(self, capsys):
        assert execute([str(GOOD)], rules=["nope"]) == 2
        assert "unknown analysis rule" in capsys.readouterr().err

    def test_missing_path_exits_two(self, capsys):
        assert execute(["definitely/not/here"]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_missing_path_raises_in_api(self):
        with pytest.raises(AnalysisUsageError):
            analyze_paths(["definitely/not/here"])

    def test_syntax_error_becomes_e999_finding(self, tmp_path):
        target = tmp_path / "broken.py"
        target.write_text("def oops(:\n")
        report = analyze_paths([target])
        assert [f.rule for f in report.findings] == ["E999"]
        assert not report.clean


class TestSelfCheck:
    def test_shipped_src_tree_is_clean(self):
        report = analyze_paths([SRC])
        assert report.clean, "\n".join(f.render() for f in report.findings)
        assert report.files_checked > 100
        # The justified virtual-time pragmas are the only suppressions.
        assert {f.rule for f in report.suppressed} == {"S001"}

    def test_registry_drift_is_caught(self, tmp_path):
        """Deleting a module from _BUILTIN_SUBMITTER_MODULES fails R001."""
        tree = tmp_path / "src"
        shutil.copytree(SRC / "repro", tree / "repro")
        registry = tree / "repro" / "registry.py"
        original = registry.read_text()
        drifted = original.replace('    "pbs": "repro.exec.cluster.pbs",\n', "")
        assert drifted != original, "pbs entry not found to delete"
        registry.write_text(drifted)
        report = analyze_paths([tree], rules=["R001"])
        assert not report.clean
        assert any(
            f.rule == "R001" and "'pbs'" in f.message for f in report.findings
        )
        # ...and the untouched copy passes, so the drift is the only cause.
        registry.write_text(original)
        assert analyze_paths([tree], rules=["R001"]).clean


class TestModel:
    def test_module_name_walks_init_chain(self):
        assert module_name_for(SRC / "repro" / "exec" / "cache.py") == (
            "repro.exec.cache"
        )
        assert module_name_for(SRC / "repro" / "obs" / "__init__.py") == "repro.obs"
        assert module_name_for(BAD / "d001.py") == "d001"

    def test_import_alias_resolution(self, tmp_path):
        target = tmp_path / "aliased.py"
        target.write_text(
            "import numpy as np\n"
            "from time import monotonic as mono\n"
            "x = np.random.default_rng\n"
            "y = mono\n"
        )
        parsed = SourceFile.parse(target)
        assert parsed.imports["np"] == "numpy"
        assert parsed.imports["mono"] == "time.monotonic"

    def test_aliased_wall_clock_still_caught(self, tmp_path):
        target = tmp_path / "sneaky.py"
        target.write_text(
            "from time import monotonic as innocuous\n\n\n"
            "def stamp():\n"
            "    return innocuous()\n"
        )
        report = analyze_paths([target], rules=["D001"])
        assert not report.clean
