"""Tests for the remapping layer (Eq. 2 minimax transfer optimisation)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.remapping import RemappingLayer


def tokens_dict(cluster, values):
    ranks = list(cluster.iter_ranks())[: len(values)]
    return dict(zip(ranks, values))


class TestRemapPlanConstruction:
    def test_balanced_input_needs_no_transfers(self, cluster_a2):
        layer = RemappingLayer(cluster=cluster_a2)
        plan = layer.plan({r: 4096 for r in cluster_a2.iter_ranks()})
        assert plan.total_moved_tokens == 0.0
        assert plan.max_rank_cost_s == 0.0

    def test_result_is_token_balanced(self, cluster_a2):
        layer = RemappingLayer(cluster=cluster_a2)
        counts = {r: 1000 * (r + 1) for r in cluster_a2.iter_ranks()}
        plan = layer.plan(counts)
        resulting = plan.resulting_tokens()
        target = sum(counts.values()) / len(counts)
        np.testing.assert_allclose(resulting, target, rtol=1e-6)

    def test_surplus_ranks_only_send_and_deficit_ranks_only_receive(self, cluster_a2):
        layer = RemappingLayer(cluster=cluster_a2)
        counts = {r: (8000 if r < 8 else 200) for r in cluster_a2.iter_ranks()}
        plan = layer.plan(counts)
        mean = sum(counts.values()) / len(counts)
        for i, rank in enumerate(plan.ranks):
            sent = sum(plan.transfer_tokens[i])
            received = sum(row[i] for row in plan.transfer_tokens)
            if counts[rank] > mean:
                assert received == pytest.approx(0.0, abs=1e-6)
                assert sent == pytest.approx(counts[rank] - mean, rel=1e-6)
            else:
                assert sent == pytest.approx(0.0, abs=1e-6)

    def test_inverse_restores_original_layout(self, cluster_a2):
        layer = RemappingLayer(cluster=cluster_a2)
        counts = {r: 500 + 300 * r for r in cluster_a2.iter_ranks()}
        plan = layer.plan(counts)
        inverse = plan.inverse()
        restored = inverse.resulting_tokens()
        np.testing.assert_allclose(
            restored, [counts[r] for r in plan.ranks], rtol=1e-6
        )

    def test_lp_prefers_intra_node_transfers(self, cluster_a2):
        # Surplus on node 0 and deficit on node 0 can be satisfied without ever
        # touching the inter-node link.
        layer = RemappingLayer(cluster=cluster_a2, solver="linprog")
        counts = {r: 4096 for r in cluster_a2.iter_ranks()}
        counts[0] = 8192
        counts[1] = 0
        plan = layer.plan(counts)
        moved_inter = 0.0
        for i, src in enumerate(plan.ranks):
            for j, dst in enumerate(plan.ranks):
                if not cluster_a2.same_node(src, dst):
                    moved_inter += plan.transfer_tokens[i][j]
        assert moved_inter == pytest.approx(0.0, abs=1e-6)

    def test_greedy_solver_satisfies_constraints(self, cluster_a2):
        layer = RemappingLayer(cluster=cluster_a2, solver="greedy")
        counts = {r: (6000 if r % 2 == 0 else 1000) for r in cluster_a2.iter_ranks()}
        plan = layer.plan(counts)
        assert plan.solver == "greedy"
        np.testing.assert_allclose(
            plan.resulting_tokens(), sum(counts.values()) / len(counts), rtol=1e-6
        )

    def test_lp_never_worse_than_greedy(self, cluster_a2):
        counts = {r: (10000 if r < 3 else 500) for r in cluster_a2.iter_ranks()}
        lp_plan = RemappingLayer(cluster=cluster_a2, solver="linprog").plan(counts)
        greedy_plan = RemappingLayer(cluster=cluster_a2, solver="greedy").plan(counts)
        assert lp_plan.max_rank_cost_s <= greedy_plan.max_rank_cost_s * 1.001

    def test_invalid_solver_rejected(self, cluster_a2):
        with pytest.raises(ValueError):
            RemappingLayer(cluster=cluster_a2, solver="magic")

    def test_empty_input_rejected(self, cluster_a2):
        with pytest.raises(ValueError):
            RemappingLayer(cluster=cluster_a2).plan({})


class TestCostMatrix:
    def test_intra_vs_inter_costs(self, cluster_a2):
        layer = RemappingLayer(cluster=cluster_a2)
        ranks = (0, 1, 8)
        t = layer.cost_matrix(ranks)
        profile = cluster_a2.profile
        assert t[0, 1] == pytest.approx(profile.b_intra)
        assert t[0, 2] == pytest.approx(profile.b_inter)
        assert t[0, 0] == 0.0
        np.testing.assert_allclose(t, t.T)


class TestRemappingProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        counts=st.lists(
            st.integers(min_value=0, max_value=20000), min_size=2, max_size=8
        ),
        solver=st.sampled_from(["linprog", "greedy"]),
    )
    def test_property_constraints_hold(self, tiny_cluster, counts, solver):
        layer = RemappingLayer(cluster=tiny_cluster, solver=solver)
        ranks = list(tiny_cluster.iter_ranks())[: len(counts)]
        plan = layer.plan(dict(zip(ranks, counts)))
        n = len(ranks)
        mean = sum(counts) / n
        matrix = np.array(plan.transfer_tokens)
        # Non-negativity.
        assert (matrix >= -1e-9).all()
        # Row sums equal surpluses, column sums equal deficits.
        surplus = np.maximum(np.array(counts, dtype=float) - mean, 0.0)
        deficit = np.maximum(mean - np.array(counts, dtype=float), 0.0)
        np.testing.assert_allclose(matrix.sum(axis=1), surplus, atol=1e-4)
        np.testing.assert_allclose(matrix.sum(axis=0), deficit, atol=1e-4)
        # The plan balances the layout.
        np.testing.assert_allclose(plan.resulting_tokens(), mean, atol=1e-4)
