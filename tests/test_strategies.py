"""Tests for the Zeppelin strategy and the baseline strategies."""

import pytest

from repro.baselines.hybrid_dp import HybridDPStrategy
from repro.baselines.llama_cp import LlamaCPStrategy
from repro.baselines.packing import PackingStrategy
from repro.baselines.te_cp import TransformerEngineCPStrategy
from repro.core.plan import TaskKind
from repro.core.strategy import StrategyContext
from repro.core.zeppelin import ZeppelinStrategy
from repro.data.sampler import Batch
from repro.sim.engine import Simulator


def makespan(strategy, batch, phase="forward"):
    return Simulator(record_trace=False).run(strategy.plan_layer(batch, phase)).makespan_s


class TestStrategyContext:
    def test_dp_ranks_without_tp(self, context_16):
        assert context_16.dp_ranks == tuple(range(16))
        assert context_16.dp_world_size == 16

    def test_dp_ranks_with_tp(self, cluster_a2, spec_7b):
        ctx = StrategyContext(
            cluster=cluster_a2, spec=spec_7b, token_budget=8192, tensor_parallel=2
        )
        assert ctx.dp_ranks == tuple(range(0, 16, 2))
        assert ctx.dp_world_size == 8

    def test_tp_must_fit_in_a_node(self, cluster_a2, spec_7b):
        with pytest.raises(ValueError):
            StrategyContext(
                cluster=cluster_a2, spec=spec_7b, token_budget=4096, tensor_parallel=16
            )

    def test_world_must_divide_by_tp(self, tiny_cluster, spec_7b):
        with pytest.raises(ValueError):
            StrategyContext(
                cluster=tiny_cluster, spec=spec_7b, token_budget=4096, tensor_parallel=3
            )


class TestTransformerEngineCP:
    def test_tokens_split_evenly(self, context_16, mixed_batch):
        strategy = TransformerEngineCPStrategy(context_16)
        tokens = strategy.tokens_per_rank(mixed_batch)
        values = list(tokens.values())
        assert sum(values) == mixed_batch.total_tokens
        assert max(values) - min(values) <= 2 * mixed_batch.num_sequences

    def test_plan_contains_ring_communication(self, context_16, mixed_batch):
        strategy = TransformerEngineCPStrategy(context_16)
        plan = strategy.plan_layer(mixed_batch)
        kinds = {t.kind for t in plan.tasks}
        assert TaskKind.INTER_COMM in kinds
        assert TaskKind.ATTENTION in kinds
        assert TaskKind.LINEAR in kinds

    def test_routing_variant_is_faster(self, context_16, mixed_batch):
        base = TransformerEngineCPStrategy(context_16)
        routed = TransformerEngineCPStrategy(context_16, use_routing=True)
        assert makespan(routed, mixed_batch) < makespan(base, mixed_batch)
        assert "Routing" in routed.name

    def test_backward_slower_than_forward(self, context_16, mixed_batch):
        strategy = TransformerEngineCPStrategy(context_16)
        assert makespan(strategy, mixed_batch, "backward") > makespan(
            strategy, mixed_batch, "forward"
        )


class TestLlamaCP:
    def test_allgather_is_on_the_critical_path(self, context_16, mixed_batch):
        strategy = LlamaCPStrategy(context_16)
        plan = strategy.plan_layer(mixed_batch)
        allgathers = [t for t in plan.tasks if t.kind == TaskKind.ALLGATHER]
        attentions = [t for t in plan.tasks if t.kind == TaskKind.ATTENTION]
        assert allgathers and attentions
        allgather_ids = {t.task_id for t in allgathers}
        assert all(set(t.deps) & allgather_ids for t in attentions)

    def test_faster_than_te_cp_on_mixed_batch(self, context_16, mixed_batch):
        te = TransformerEngineCPStrategy(context_16)
        llama = LlamaCPStrategy(context_16)
        assert makespan(llama, mixed_batch) < makespan(te, mixed_batch)

    def test_linear_tokens_balanced(self, context_16, mixed_batch):
        strategy = LlamaCPStrategy(context_16)
        plan = strategy.plan_layer(mixed_batch)
        linear = [t for t in plan.tasks if t.kind == TaskKind.LINEAR]
        durations = [t.duration_s for t in linear]
        assert max(durations) / min(durations) < 1.5


class TestHybridDP:
    def test_long_sequences_get_cp_groups(self, context_16):
        strategy = HybridDPStrategy(context_16)
        batch = Batch.from_lengths([40000, 2000, 2000, 1500, 1000])
        assignment = strategy.assign(batch)
        assert assignment.num_cp_groups >= 1
        cp_seq_ids = {
            seq.seq_id for mb in assignment.micro_batches for seq, _ in mb.cp_groups
        }
        assert 0 in cp_seq_ids  # the 40k sequence

    def test_short_only_batch_uses_plain_dp(self, context_16, short_batch):
        strategy = HybridDPStrategy(context_16)
        assignment = strategy.assign(short_batch)
        assert assignment.num_cp_groups == 0
        assert assignment.num_micro_batches == 1

    def test_tokens_conserved_across_micro_batches(self, context_16, mixed_batch):
        strategy = HybridDPStrategy(context_16)
        assignment = strategy.assign(mixed_batch)
        totals = assignment.tokens_per_rank(context_16.dp_ranks)
        # Ring chunking rounds down per rank; allow a small remainder loss.
        assert sum(totals.values()) >= mixed_batch.total_tokens - 64

    def test_plan_simulates(self, context_16, mixed_batch):
        strategy = HybridDPStrategy(context_16)
        assert makespan(strategy, mixed_batch) > 0

    def test_moe_inflates_linear_time(self, cluster_a2, spec_moe, spec_3b, mixed_batch):
        ctx_moe = StrategyContext(cluster=cluster_a2, spec=spec_moe, token_budget=4096)
        ctx_dense = StrategyContext(cluster=cluster_a2, spec=spec_3b, token_budget=4096)
        moe_plan = HybridDPStrategy(ctx_moe).plan_layer(mixed_batch)
        dense_plan = HybridDPStrategy(ctx_dense).plan_layer(mixed_batch)
        assert moe_plan.metadata["num_micro_batches"] >= 1
        assert dense_plan.metadata["num_micro_batches"] >= 1


class TestPackingStrategy:
    def test_buffers_cover_all_tokens(self, context_16, mixed_batch):
        strategy = PackingStrategy(context_16)
        per_rank = strategy.pack(mixed_batch)
        total = sum(b.used for buffers in per_rank.values() for b in buffers)
        assert total == mixed_batch.total_tokens

    def test_cross_sequence_attention_costs_more(self, context_16, short_batch):
        naive = PackingStrategy(context_16, cross_sequence_attention=True)
        masked = PackingStrategy(context_16, cross_sequence_attention=False)
        assert makespan(naive, short_batch) >= makespan(masked, short_batch)

    def test_ulysses_variant_adds_all_to_all(self, context_16, short_batch):
        strategy = PackingStrategy(context_16, ulysses_degree=8)
        plan = strategy.plan_layer(short_batch)
        assert any(t.kind == TaskKind.ALLGATHER for t in plan.tasks)
        assert "Ulysses" in strategy.name


class TestZeppelinStrategy:
    def test_full_zeppelin_beats_all_baselines(self, context_16, mixed_batch):
        zeppelin = ZeppelinStrategy(context_16)
        others = [
            TransformerEngineCPStrategy(context_16),
            LlamaCPStrategy(context_16),
            HybridDPStrategy(context_16),
        ]
        z = makespan(zeppelin, mixed_batch)
        for other in others:
            assert z <= makespan(other, mixed_batch) * 1.05

    def test_plan_contains_remapping_when_enabled(self, context_16, mixed_batch):
        zeppelin = ZeppelinStrategy(context_16, use_remapping=True)
        plan = zeppelin.plan_layer(mixed_batch)
        assert any(t.kind == TaskKind.REMAP for t in plan.tasks)
        assert "remap_plan" in plan.metadata

    def test_no_remapping_variant(self, context_16, mixed_batch):
        zeppelin = ZeppelinStrategy(context_16, use_remapping=False)
        plan = zeppelin.plan_layer(mixed_batch)
        assert not any(t.kind == TaskKind.REMAP for t in plan.tasks)
        assert "no remap" in zeppelin.name

    def test_routing_disabled_emits_no_dispatch(self, context_16):
        batch = Batch.from_lengths([16 * 4096])
        zeppelin = ZeppelinStrategy(context_16, use_routing=False)
        plan = zeppelin.plan_layer(batch)
        assert not any(t.kind == TaskKind.DISPATCH for t in plan.tasks)

    def test_component_ablation_ordering(self, context_3b_16, mixed_batch):
        """Each added component must not slow the system down (Fig. 11 trend)."""
        bare = ZeppelinStrategy(context_3b_16, use_routing=False, use_remapping=False)
        routed = ZeppelinStrategy(context_3b_16, use_routing=True, use_remapping=False)
        full = ZeppelinStrategy(context_3b_16, use_routing=True, use_remapping=True)
        t_bare = makespan(bare, mixed_batch)
        t_routed = makespan(routed, mixed_batch)
        t_full = makespan(full, mixed_batch)
        assert t_routed <= t_bare * 1.01
        assert t_full <= t_routed * 1.05

    def test_local_only_batch_has_zero_inter_node_comm(self, context_16, short_batch):
        zeppelin = ZeppelinStrategy(context_16)
        plan = zeppelin.plan_layer(short_batch)
        inter = [t for t in plan.tasks if t.kind == TaskKind.INTER_COMM]
        assert sum(t.duration_s for t in inter) == 0.0

    def test_partition_exposed_for_inspection(self, context_16, mixed_batch):
        zeppelin = ZeppelinStrategy(context_16)
        partition = zeppelin.partition(mixed_batch)
        assert partition.total_tokens() == mixed_batch.total_tokens

    def test_plan_metadata(self, context_16, mixed_batch):
        plan = ZeppelinStrategy(context_16).plan_layer(mixed_batch)
        assert plan.metadata["total_tokens"] == mixed_batch.total_tokens
        assert plan.metadata["phase"] == "forward"
