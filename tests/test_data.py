"""Tests for distributions, batch sampling, datasets and packing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.datasets import (
    SyntheticDataset,
    balanced_case_study_batch,
    single_sequence_batch,
    skewed_case_study_batch,
    uniform_batch,
)
from repro.data.distributions import (
    TABLE2_DISTRIBUTIONS,
    available_distributions,
    get_distribution,
)
from repro.data.packing import (
    PackedBuffer,
    chunk_sequence,
    pack_sequences,
    packing_statistics,
    split_evenly,
)
from repro.data.sampler import Batch, BatchSampler, Sequence


class TestDistributions:
    def test_table2_datasets_registered(self):
        for name in ("arxiv", "github", "prolong64k"):
            dist = get_distribution(name)
            assert abs(sum(b.probability for b in dist.bins) - 1.0) < 1e-9

    def test_unknown_distribution_raises(self):
        with pytest.raises(KeyError):
            get_distribution("c4")

    def test_available_lists_both_families(self):
        names = available_distributions()
        assert "arxiv" in names and "fineweb" in names

    def test_github_has_the_longest_tail(self):
        github = get_distribution("github")
        arxiv = get_distribution("arxiv")
        assert github.long_tail_fraction(64 * 1024) > arxiv.long_tail_fraction(64 * 1024)

    def test_sample_lengths_within_bins(self):
        dist = get_distribution("arxiv")
        rng = np.random.default_rng(0)
        for length in dist.sample_lengths(500, rng):
            assert dist.bin_of(length) is not None

    def test_probability_of_out_of_range_length(self):
        dist = get_distribution("arxiv")
        assert dist.probability_of(10**9) == 0.0

    def test_mean_length_ordering(self):
        # ProLong64k is dominated by 32-64k documents; ArXiv is mid-length.
        assert (
            TABLE2_DISTRIBUTIONS["prolong64k"].mean_length
            > TABLE2_DISTRIBUTIONS["arxiv"].mean_length
        )


class TestBatchSampler:
    def test_batch_fills_the_budget(self):
        sampler = BatchSampler(get_distribution("arxiv"), total_context=64 * 1024, seed=1)
        batch = sampler.sample_batch()
        assert batch.total_tokens == 64 * 1024

    def test_reproducible_given_seed(self):
        a = BatchSampler(get_distribution("github"), total_context=32768, seed=7).sample_batch()
        b = BatchSampler(get_distribution("github"), total_context=32768, seed=7).sample_batch()
        assert a.lengths == b.lengths

    def test_different_seeds_differ(self):
        a = BatchSampler(get_distribution("github"), total_context=32768, seed=1).sample_batch()
        b = BatchSampler(get_distribution("github"), total_context=32768, seed=2).sample_batch()
        assert a.lengths != b.lengths

    def test_no_truncation_mode_never_exceeds_budget(self):
        sampler = BatchSampler(
            get_distribution("arxiv"), total_context=16384, seed=3, allow_truncation=False
        )
        batch = sampler.sample_batch()
        assert batch.total_tokens <= 16384

    def test_sequence_ids_unique_across_batches(self):
        sampler = BatchSampler(get_distribution("arxiv"), total_context=16384, seed=5)
        batches = sampler.sample_batches(3)
        all_ids = [s.seq_id for b in batches for s in b]
        assert len(all_ids) == len(set(all_ids))

    def test_invalid_budget_rejected(self):
        with pytest.raises(ValueError):
            BatchSampler(get_distribution("arxiv"), total_context=10)


class TestBatch:
    def test_from_lengths(self):
        batch = Batch.from_lengths([10, 20, 30])
        assert batch.total_tokens == 60
        assert batch.max_length == 30 and batch.min_length == 10

    def test_sorted_by_length(self):
        batch = Batch.from_lengths([10, 30, 20])
        assert [s.length for s in batch.sorted_by_length()] == [30, 20, 10]

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError):
            Batch(sequences=(Sequence(0, 5), Sequence(0, 6)))

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            Batch(sequences=())


class TestSyntheticDataset:
    def test_batches_match_budget(self):
        ds = SyntheticDataset(name="arxiv", total_context=32768, seed=0)
        for batch in ds.batches(3):
            assert batch.total_tokens == 32768

    def test_case_study_batches(self):
        balanced = balanced_case_study_batch(total_context=131072)
        skewed = skewed_case_study_batch(total_context=131072)
        assert balanced.total_tokens == 131072
        assert skewed.total_tokens == 131072
        # The skewed batch has one dominant sequence (75% of the budget).
        assert skewed.max_length >= 0.7 * 131072
        assert balanced.max_length < 0.7 * 131072

    def test_single_and_uniform_batches(self):
        assert single_sequence_batch(4096).num_sequences == 1
        uni = uniform_batch(4, 1024)
        assert uni.num_sequences == 4 and uni.total_tokens == 4096


class TestPacking:
    def test_chunk_sequence_covers_length(self):
        assert chunk_sequence(10, 3) == [3, 3, 3, 1]
        assert sum(chunk_sequence(12345, 4096)) == 12345

    def test_split_evenly_differences_at_most_one(self):
        parts = split_evenly(103, 8)
        assert sum(parts) == 103
        assert max(parts) - min(parts) <= 1

    def test_pack_first_fit_decreasing(self):
        batch = Batch.from_lengths([3000, 2000, 2000, 1000])
        buffers = pack_sequences(batch, capacity=4096)
        assert sum(b.used for b in buffers) == batch.total_tokens
        assert all(b.used <= 4096 for b in buffers)
        assert len(buffers) == 2

    def test_oversized_sequence_is_split(self):
        batch = Batch.from_lengths([10000])
        buffers = pack_sequences(batch, capacity=4096)
        assert sum(b.used for b in buffers) == 10000

    def test_oversized_rejected_when_splitting_disabled(self):
        batch = Batch.from_lengths([10000])
        with pytest.raises(ValueError):
            pack_sequences(batch, capacity=4096, split_oversized=False)

    def test_buffer_overflow_rejected(self):
        buf = PackedBuffer(capacity=100)
        buf.add(0, 80)
        with pytest.raises(ValueError):
            buf.add(1, 30)

    def test_redundant_attention_positive_only_when_multiple_segments(self):
        single = PackedBuffer(capacity=100)
        single.add(0, 100)
        assert single.redundant_attention_tokens_sq() == 0.0
        packed = PackedBuffer(capacity=100)
        packed.add(0, 50)
        packed.add(1, 50)
        assert packed.redundant_attention_tokens_sq() > 0.0

    def test_packing_statistics(self):
        batch = Batch.from_lengths([512] * 8)
        buffers = pack_sequences(batch, capacity=4096)
        stats = packing_statistics(buffers)
        assert stats["total_tokens"] == 4096
        assert 0.0 < stats["redundant_attention_fraction"] < 1.0

    def test_packing_statistics_empty(self):
        assert packing_statistics([])["num_buffers"] == 0

    @settings(max_examples=30, deadline=None)
    @given(
        lengths=st.lists(st.integers(min_value=1, max_value=9000), min_size=1, max_size=30),
        capacity=st.sampled_from([1024, 4096, 8192]),
    )
    def test_property_packing_conserves_tokens(self, lengths, capacity):
        batch = Batch.from_lengths(lengths)
        buffers = pack_sequences(batch, capacity=capacity)
        assert sum(b.used for b in buffers) == sum(lengths)
        assert all(b.used <= capacity for b in buffers)
