"""Benchmark of the serving loop: requests per wall-clock second.

Drives a sustained open-loop workload (hundreds of requests over a small
strategy mix) through :class:`~repro.serve.driver.ServeSimulation` and
measures how many requests the serving stack retires per *real* second —
queueing, batching, cache lookups and the underlying simulations included.

Two regression guards:

* the warm path (plan caches + in-run result cache populated) must clear a
  conservative requests/sec floor, and
* caching must collapse the repeated-cell mix to one simulation per distinct
  cell — the property that makes heavy traffic affordable at all.

CI runs this file as a perf smoke step and uploads the printed table as a
workflow artifact, so per-PR serving-throughput trajectories stay
inspectable.
"""

import time

from repro.api import Session
from repro.serve.driver import ServeSimulation
from repro.serve.spec import ServeSpec

RATE_RPS = 100.0
DURATION_S = 10.0
MIX = {"zeppelin": 2.0, "te_cp": 1.0, "llama_cp": 1.0}

# Warm requests/sec floor: measured ~20k on the reference laptop; two orders
# of magnitude of headroom for slow CI machines.
MIN_WARM_RPS = 200.0

CLOSED_SPEC = ServeSpec(
    mix=MIX,
    arrival="closed",
    clients=64,
    think_time_s=0.2,
    duration_s=DURATION_S,
    concurrency=4,
    slo_s=2.0,
    admission="slo_aware",
)


def _serve(session):
    sim = ServeSimulation(
        session, MIX, rate=RATE_RPS, duration_s=DURATION_S, concurrency=4
    )
    return sim.run()


def test_bench_serve_throughput(benchmark, printed_results):
    session = Session(
        model="3b", num_gpus=16, dataset="arxiv", total_context=32 * 1024, num_steps=1
    )

    # Cold: first serve pays planning, compilation and one simulation per
    # distinct cell in the mix.
    t0 = time.perf_counter()
    cold = _serve(session)
    cold_s = time.perf_counter() - t0
    assert cold.completed == cold.num_requests > 0

    # Caching must collapse repeated cells: one simulation per distinct cell;
    # every other request joined an in-flight execution or hit the cache.
    assert cold.simulations == len(MIX)
    assert cold.cache_hits + cold.batched_requests == cold.completed - len(MIX)
    assert cold.cache_hits > 0

    # Warm: the session's plan caches are hot; only the serving loop and the
    # per-run result cache remain (what pytest-benchmark records).
    benchmark.pedantic(lambda: _serve(session), rounds=3, iterations=1)
    t0 = time.perf_counter()
    warm = _serve(session)
    warm_s = time.perf_counter() - t0
    assert warm.to_json() == cold.to_json()  # wall time never leaks into results

    warm_rps = warm.completed / warm_s
    assert warm_rps >= MIN_WARM_RPS, (
        f"serving-loop regression: {warm_rps:,.0f} requests/s "
        f"(floor {MIN_WARM_RPS:,.0f})"
    )

    printed_results.append(
        "\n".join(
            [
                "Serving throughput (open-loop poisson "
                f"{RATE_RPS:.0f} req/s x {DURATION_S:.0f}s, "
                f"{len(MIX)}-cell mix, concurrency 4)",
                f"  requests served       : {warm.completed}",
                f"  simulations executed  : {warm.simulations} "
                f"(cache hit rate {warm.cache_hit_rate:.1%})",
                f"  virtual p50 / p99     : {warm.p50_latency_s * 1e3:.1f} ms / "
                f"{warm.p99_latency_s * 1e3:.1f} ms",
                f"  cold serve            : {cold_s * 1e3:9.2f} ms "
                f"({cold.completed / cold_s:,.0f} req/s)",
                f"  warm serve            : {warm_s * 1e3:9.2f} ms "
                f"({warm_rps:,.0f} req/s, floor {MIN_WARM_RPS:,.0f})",
            ]
        )
    )


def test_bench_serve_closed_loop(benchmark, printed_results):
    """Closed-loop serving with SLO-aware admission: the full tentpole path.

    Exercises per-arrival AdmissionContext construction (queued-work and
    cost-estimate lookups), closed-loop re-issuance and shedding — the
    per-request overhead the open-loop benchmark does not touch.
    """
    session = Session(
        model="3b", num_gpus=16, dataset="arxiv", total_context=32 * 1024, num_steps=1
    )

    def _serve_closed():
        return ServeSimulation(session, spec=CLOSED_SPEC).run()

    cold = _serve_closed()
    assert cold.num_requests > 0
    assert cold.completed + cold.shed_count == cold.num_requests
    assert cold.simulations == len(MIX)

    benchmark.pedantic(_serve_closed, rounds=3, iterations=1)
    t0 = time.perf_counter()
    warm = _serve_closed()
    warm_s = time.perf_counter() - t0
    assert warm.to_json() == cold.to_json()  # closed loop is deterministic too

    warm_rps = warm.completed / warm_s
    assert warm_rps >= MIN_WARM_RPS, (
        f"closed-loop serving regression: {warm_rps:,.0f} requests/s "
        f"(floor {MIN_WARM_RPS:,.0f})"
    )

    printed_results.append(
        "\n".join(
            [
                "Serving throughput (closed-loop, "
                f"{CLOSED_SPEC.clients} clients x {CLOSED_SPEC.think_time_s:.1f}s "
                f"think x {DURATION_S:.0f}s, slo_aware @ {CLOSED_SPEC.slo_s:.0f}s)",
                f"  requests issued/shed  : {warm.num_requests} / {warm.shed_count}",
                f"  simulations executed  : {warm.simulations} "
                f"(cache hit rate {warm.cache_hit_rate:.1%})",
                f"  warm serve            : {warm_s * 1e3:9.2f} ms "
                f"({warm_rps:,.0f} req/s, floor {MIN_WARM_RPS:,.0f})",
            ]
        )
    )
