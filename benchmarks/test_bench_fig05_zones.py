"""Benchmark regenerating Fig. 5 (cost curves and zone boundaries)."""

from repro.experiments import fig05_zone_boundaries


def test_bench_fig05_zone_boundaries(benchmark, printed_results):
    result = benchmark.pedantic(fig05_zone_boundaries.run, rounds=1, iterations=1)
    printed_results.append(result.to_text())
    thresholds = result.extra["thresholds"]
    printed_results.append(
        f"fig5 zone thresholds: local < {thresholds['local_max']} tokens, "
        f"inter-node >= {thresholds['intra_max']} tokens"
    )
    # The paper's crossover between compute and single-NIC transfer sits in the
    # 8-16k band for a 7B model on A800s.
    assert 4 * 1024 <= thresholds["intra_max"] <= 32 * 1024
