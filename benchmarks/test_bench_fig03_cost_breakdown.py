"""Benchmark regenerating Fig. 3 (attention cost breakdown by length bin)."""

from repro.experiments import fig03_attention_cost_breakdown


def test_bench_fig03_attention_cost_breakdown(benchmark, printed_results):
    result = benchmark.pedantic(
        lambda: fig03_attention_cost_breakdown.run(
            datasets=("arxiv", "github", "stackexchange", "prolong64")
        ),
        rounds=1,
        iterations=1,
    )
    printed_results.append(result.to_text())
    # Redundant cross-sequence computation appears only in the packing scheme.
    packing_redundant = sum(r[5] for r in result.rows if r[0] == "pack+ulysses")
    cp_redundant = sum(r[5] for r in result.rows if r[0] == "even-split ring CP")
    assert packing_redundant > 0.0
    assert cp_redundant == 0.0
