"""Benchmark regenerating Fig. 10 (Cluster A vs Cluster B comparison)."""

from repro.experiments import fig10_cluster_comparison


def test_bench_fig10_cluster_comparison(benchmark, printed_results):
    result = benchmark.pedantic(
        lambda: fig10_cluster_comparison.run(num_steps=1),
        rounds=1,
        iterations=1,
    )
    printed_results.append(result.to_text())
    for dataset in ("arxiv", "github", "prolong64k"):
        a = result.extra[("A", dataset)]
        b = result.extra[("B", dataset)]
        # Zeppelin wins on both clusters; Cluster B's Hopper GPUs give it a
        # higher absolute throughput.
        assert a["zeppelin"] == max(a.values())
        assert b["zeppelin"] == max(b.values())
        assert b["zeppelin"] > a["zeppelin"]
