"""Benchmark regenerating Fig. 12 (attention timeline analysis)."""

from repro.costs.calibration import get_calibration
from repro.experiments import fig12_timeline


def test_bench_fig12_timeline(benchmark, printed_results):
    result = benchmark.pedantic(fig12_timeline.run, rounds=1, iterations=1)
    printed_results.append(result.to_text())

    te = result.extra["a) TE CP, single 64k sequence"]
    zeppelin = result.extra["b) Zeppelin, single 64k sequence"]
    many = result.extra["c) Zeppelin, 16 x 4k sequences"]

    # Fig. 12.a/b: routing cuts the per-round inter-node transfer roughly in
    # proportion to the NIC count (published: 2.18 ms -> 411 us).
    te_point = get_calibration("fig12_te_inter_node_round")
    z_point = get_calibration("fig12_zeppelin_inter_node_round")
    assert te["per_round_inter_comm_s"] == te_point.value_s or abs(
        te["per_round_inter_comm_s"] - te_point.value_s
    ) / te_point.value_s <= te_point.rtol
    assert zeppelin["per_round_inter_comm_s"] < te["per_round_inter_comm_s"] / 2
    assert abs(zeppelin["per_round_inter_comm_s"] - z_point.value_s) / z_point.value_s <= 2.0

    # Fig. 12.c: many short sequences avoid inter-node communication entirely.
    assert many["summary"]["total_inter_comm_s"] == 0.0
    assert many["makespan_s"] < te["makespan_s"]
