"""Benchmarks regenerating Fig. 1 and Table 2 (dataset length distributions)."""

from repro.experiments import fig01_length_distributions, table2_dataset_distributions


def test_bench_fig01_length_distributions(benchmark, printed_results):
    result = benchmark.pedantic(
        lambda: fig01_length_distributions.run(samples_per_dataset=20000),
        rounds=1,
        iterations=1,
    )
    printed_results.append(result.to_text())
    assert len(result.rows) == 7
    # Sampling reproduces the target histograms.
    assert all(row[-1] < 0.05 for row in result.rows)


def test_bench_table2_dataset_distributions(benchmark, printed_results):
    result = benchmark.pedantic(table2_dataset_distributions.run, rounds=1, iterations=1)
    printed_results.append(result.to_text())
    assert {row[0] for row in result.rows} == {"arxiv", "github", "prolong64k"}
