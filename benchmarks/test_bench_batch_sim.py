"""Benchmark of the batched lane-parallel kernel vs sequential simulation.

Builds a 64-rank contended plan shaped like one context-parallel layer with
rng-jittered durations (no coincidental same-instant ties, the regime real
strategy plans live in), then times a 64-lane duration-varying batch —
every lane the base durations under a different scalar, the sweep/resilience
shape — against the same 64 variants run sequentially through
:meth:`Simulator.run` on the warm compiled plan.

The batch must be bit-identical per lane and at least ``MIN_SPEEDUP`` ahead
in warm lanes/sec: the kernel's schedule replay reduces each lane after the
pilot to one add (or divide) per task, so on this plan nearly all 64 lanes
replay.  A jitter-lane batch (per-task noise, breaking replay groupings) is
also reported, unfloored — it bounds the kernel's worst case from above.
CI runs this file in the perf-smoke job and prints the lanes/sec table.
"""

import dataclasses
import random
import time

from repro.core.plan import ExecutionPlan, TaskKind
from repro.sim.batch import Lane, simulate_batch
from repro.sim.engine import Simulator

NUM_RANKS = 64
ROUNDS = 3
FANOUT = 4
GPUS_PER_NIC = 2
NUM_LANES = 64

# The kernel's floor on the duration-varying batch (measured ~10x on the
# reference hardware; 3x leaves headroom for slow CI machines).
MIN_SPEEDUP = 3.0


def _build_contended_plan() -> ExecutionPlan:
    """One layer at 64 ranks: compute -> NIC-contended sends -> reduce.

    Durations carry multiplicative rng jitter so distinct completion
    instants never coincide by decimal accident — same-instant groups come
    only from genuine structure, as in strategy-generated plans.
    """
    rng = random.Random(7)
    plan = ExecutionPlan()
    last = [None] * NUM_RANKS
    for rnd in range(ROUNDS):
        for rank in range(NUM_RANKS):
            deps = [last[rank]] if last[rank] is not None else []
            compute = plan.add(
                f"attn:{rnd}:{rank}",
                TaskKind.ATTENTION,
                0.001 * (1.0 + rng.random() * 0.35),
                (f"compute:{rank}",),
                deps=deps,
                rank=rank,
                priority=2,
            )
            sends = []
            for k in range(FANOUT):
                peer = (rank + (rnd * FANOUT + k) * 37 + 1) % NUM_RANKS
                sends.append(
                    plan.add(
                        f"send:{rnd}:{rank}:{peer}",
                        TaskKind.INTER_COMM,
                        0.0004 * (1.0 + rng.random() * 0.5),
                        (
                            f"nic:{rank // GPUS_PER_NIC}:tx",
                            f"nic:{peer // GPUS_PER_NIC}:rx",
                        ),
                        deps=[compute],
                        rank=rank,
                        priority=k % 2,
                    )
                )
            last[rank] = plan.add(
                f"reduce:{rnd}:{rank}",
                TaskKind.LINEAR,
                0.0008 * (1.0 + rng.random() * 0.4),
                (f"compute:{rank}",),
                deps=sends,
                rank=rank,
                priority=3,
            )
    return plan


def _time(fn, repeats=3):
    """Best-of-``repeats`` wall time of ``fn()`` plus its last return value."""
    best = float("inf")
    value = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - t0)
    return best, value


def test_bench_batch_sim(benchmark, printed_results):
    plan = _build_contended_plan()
    cp = plan.compiled()
    n = cp.num_tasks
    base = cp.durations

    # The sweep/resilience shape: one structure, 64 scalar duration variants.
    scalar_lanes = [
        Lane(durations=tuple(d * (0.75 + 0.011 * k) for d in base))
        for k in range(NUM_LANES)
    ]
    # Worst case for replay: per-task noise regroups completion instants.
    rng = random.Random(13)
    jitter_lanes = [
        Lane(durations=tuple(d * (0.8 + rng.random() * 0.4) for d in base))
        for _ in range(NUM_LANES)
    ]

    sim = Simulator(record_trace=False)

    def sequential(lanes):
        return [
            sim.run(dataclasses.replace(cp, durations=lane.durations))
            for lane in lanes
        ]

    # Warm everything once, and pin bit-identity per lane before timing.
    batch_results = simulate_batch(cp, scalar_lanes)
    for lane, got, want in zip(
        scalar_lanes, batch_results, sequential(scalar_lanes)
    ):
        assert got.makespan_s == want.makespan_s
        assert got.start_times == want.start_times
        assert got.end_times == want.end_times
    for got, want in zip(
        simulate_batch(cp, jitter_lanes), sequential(jitter_lanes)
    ):
        assert got.makespan_s == want.makespan_s
        assert got.end_times == want.end_times

    benchmark.pedantic(
        lambda: simulate_batch(cp, scalar_lanes), rounds=3, iterations=1
    )
    batch_s, _ = _time(lambda: simulate_batch(cp, scalar_lanes))
    seq_s, _ = _time(lambda: sequential(scalar_lanes))
    jitter_batch_s, _ = _time(lambda: simulate_batch(cp, jitter_lanes))
    jitter_seq_s, _ = _time(lambda: sequential(jitter_lanes))

    speedup = seq_s / batch_s
    assert speedup >= MIN_SPEEDUP, (
        f"batch-kernel regression: {NUM_LANES / batch_s:,.0f} lanes/s is only "
        f"{speedup:.1f}x sequential's {NUM_LANES / seq_s:,.0f} lanes/s"
    )

    printed_results.append(
        "\n".join(
            [
                f"Batched simulation ({NUM_RANKS}-rank contended plan, "
                f"{n} tasks, {NUM_LANES} lanes)",
                f"  sequential            : {seq_s * 1e3:9.2f} ms "
                f"({NUM_LANES / seq_s:,.0f} lanes/s)",
                f"  batched (scalar lanes): {batch_s * 1e3:9.2f} ms "
                f"({NUM_LANES / batch_s:,.0f} lanes/s)",
                f"  batch speedup         : {speedup:.1f}x "
                f"(floor {MIN_SPEEDUP}x)",
                f"  jitter lanes (no replay): {jitter_batch_s * 1e3:9.2f} ms "
                f"batched vs {jitter_seq_s * 1e3:9.2f} ms sequential "
                f"({jitter_seq_s / jitter_batch_s:.1f}x, unfloored)",
            ]
        )
    )
