"""Benchmark harness configuration.

Every benchmark regenerates one of the paper's tables or figures via the
corresponding :mod:`repro.experiments` module and prints the reproduced rows,
so ``pytest benchmarks/ --benchmark-only`` doubles as the full evaluation run.
"""

from __future__ import annotations

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--full-grid",
        action="store_true",
        default=False,
        help="run the full Fig. 8 grid and 128-GPU sweeps (slow)",
    )


@pytest.fixture(scope="session")
def full_grid(request):
    """Whether to run the paper's complete (slow) sweeps."""
    return request.config.getoption("--full-grid")


@pytest.fixture(scope="session")
def printed_results():
    """Collects experiment tables and prints them at the end of the session."""
    collected: list[str] = []
    yield collected
    if collected:
        print("\n\n========== Reproduced tables and figures ==========\n")
        for text in collected:
            print(text)
            print()
