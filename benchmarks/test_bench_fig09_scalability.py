"""Benchmark regenerating Fig. 9 (3B scalability on Cluster A)."""

from repro.experiments import fig09_scalability


def test_bench_fig09_scalability(benchmark, printed_results, full_grid):
    gpu_counts = (
        fig09_scalability.FULL_GPU_COUNTS if full_grid else fig09_scalability.DEFAULT_GPU_COUNTS
    )
    result = benchmark.pedantic(
        lambda: fig09_scalability.run(gpu_counts=gpu_counts, num_steps=1),
        rounds=1,
        iterations=1,
    )
    printed_results.append(result.to_text())
    smallest, largest = gpu_counts[0], gpu_counts[-1]
    for dataset in ("arxiv", "github", "prolong64k"):
        small = result.extra[(dataset, smallest)]
        large = result.extra[(dataset, largest)]
        # TE CP stays nearly flat; Zeppelin keeps scaling (Fig. 9's headline).
        assert large["te_cp"] < small["te_cp"] * 2.0
        assert large["zeppelin"] > small["zeppelin"] * 1.5
        assert large["zeppelin"] > large["hybrid_dp"]
        assert large["zeppelin"] > large["llama_cp"]
