"""Ablation benchmarks for design choices called out in DESIGN.md.

These go beyond the paper's Fig. 11 component ablation and quantify the
individual design decisions inside the components:

* zigzag (causal-balanced) chunk assignment vs a contiguous even split,
* the minimax LP remapping solver vs the locality-aware greedy fallback,
* the number of proxy ranks the routing layer engages per inter-node hop,
* sensitivity of the end-to-end result to the cluster's NIC count (the
  GPU-NIC affinity axis the paper varies between Clusters A and B).
"""

import pytest

from repro.cluster.presets import make_cluster
from repro.core.remapping import RemappingLayer
from repro.core.routing import RoutingLayer
from repro.core.strategy import StrategyContext
from repro.core.zeppelin import ZeppelinStrategy
from repro.data.datasets import SyntheticDataset, single_sequence_batch
from repro.model.memory import kv_bytes_per_token
from repro.model.spec import get_model
from repro.sim.engine import Simulator
from repro.training.throughput import measure_throughput


@pytest.fixture(scope="module")
def context_16():
    cluster = make_cluster(
        name="ClusterA", num_nodes=2, gpus_per_node=8, device_type="A800",
        nics_per_node=4, nic_gbps=200.0, intra_node_gBps=400.0,
    )
    return StrategyContext(cluster=cluster, spec=get_model("7b"), token_budget=4096)


def test_bench_zigzag_vs_contiguous_chunking(benchmark, context_16, printed_results):
    """Causal-balanced chunking beats a contiguous even split for a long sequence."""
    batch = single_sequence_batch(16 * 4096)
    sim = Simulator(record_trace=False)

    def run_both():
        balanced = ZeppelinStrategy(context_16, balanced_chunking=True)
        contiguous = ZeppelinStrategy(context_16, balanced_chunking=False)
        return (
            sim.run(balanced.plan_layer(batch)).makespan_s,
            sim.run(contiguous.plan_layer(batch)).makespan_s,
        )

    balanced_s, contiguous_s = benchmark.pedantic(run_both, rounds=1, iterations=1)
    printed_results.append(
        "design ablation: zigzag chunking layer makespan "
        f"{balanced_s * 1000:.2f} ms vs contiguous {contiguous_s * 1000:.2f} ms "
        f"({contiguous_s / balanced_s:.2f}x slower without causal balance)"
    )
    assert balanced_s < contiguous_s


def test_bench_remap_solver_lp_vs_greedy(benchmark, context_16, printed_results):
    """The LP solver's minimax cost is never worse than the greedy fallback."""
    cluster = context_16.cluster
    counts = {r: (9000 if r < 4 else (500 if r < 12 else 3000)) for r in cluster.iter_ranks()}

    def solve_both():
        lp = RemappingLayer(cluster=cluster, solver="linprog").plan(counts, bytes_per_token=8192)
        greedy = RemappingLayer(cluster=cluster, solver="greedy").plan(counts, bytes_per_token=8192)
        return lp, greedy

    lp_plan, greedy_plan = benchmark.pedantic(solve_both, rounds=1, iterations=1)
    printed_results.append(
        "design ablation: remapping minimax cost LP "
        f"{lp_plan.max_rank_cost_s * 1e6:.1f} us vs greedy "
        f"{greedy_plan.max_rank_cost_s * 1e6:.1f} us"
    )
    assert lp_plan.max_rank_cost_s <= greedy_plan.max_rank_cost_s * 1.001


def test_bench_routing_proxy_count_sweep(benchmark, context_16, printed_results):
    """Eq. (1): more proxy ranks monotonically reduce the inter-node hop cost."""
    cluster = context_16.cluster
    routing = RoutingLayer(cluster=cluster)
    nbytes = 4096 * kv_bytes_per_token(get_model("7b"))

    def sweep():
        return {x: routing.routed_cost(nbytes, x, x) for x in (1, 2, 4, 8)}

    costs = benchmark.pedantic(sweep, rounds=1, iterations=1)
    printed_results.append(
        "design ablation: routed hop cost by proxy count "
        + ", ".join(f"x={x}: {c * 1e6:.0f} us" for x, c in costs.items())
    )
    assert costs[8] < costs[4] < costs[2] < costs[1]
    # With 8 proxies over 4 NICs the cost approaches the NIC-count bound.
    assert costs[1] / costs[8] > 2.5


def test_bench_nic_count_sensitivity(benchmark, printed_results):
    """Zeppelin's advantage persists when every GPU has its own NIC (Cluster B-like
    affinity), and the baseline gains little from the extra NICs."""
    spec = get_model("7b")

    def run_sensitivity():
        results = {}
        for nics in (2, 4, 8):
            cluster = make_cluster(
                name=f"A-{nics}nic", num_nodes=2, gpus_per_node=8, device_type="A800",
                nics_per_node=nics, nic_gbps=200.0, intra_node_gBps=400.0,
            )
            context = StrategyContext(cluster=cluster, spec=spec, token_budget=4096)
            batches = SyntheticDataset(name="arxiv", total_context=64 * 1024, seed=0).batches(1)
            from repro.baselines.te_cp import TransformerEngineCPStrategy

            te = measure_throughput(TransformerEngineCPStrategy(context), batches)
            zeppelin = measure_throughput(ZeppelinStrategy(context), batches)
            results[nics] = (te.tokens_per_second, zeppelin.tokens_per_second)
        return results

    results = benchmark.pedantic(run_sensitivity, rounds=1, iterations=1)
    printed_results.append(
        "design ablation: NIC-count sensitivity (TE CP vs Zeppelin tokens/s) "
        + ", ".join(f"{n} NICs: {round(te)}/{round(z)}" for n, (te, z) in results.items())
    )
    for nics, (te, z) in results.items():
        assert z > te
    # TE CP's single-NIC ring hop barely benefits from extra NICs.
    assert results[8][0] < results[2][0] * 1.3
