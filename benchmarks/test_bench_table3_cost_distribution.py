"""Benchmark regenerating Table 3 (cost distribution, balanced vs skewed)."""

from repro.experiments import table3_cost_distribution


def test_bench_table3_cost_distribution(benchmark, printed_results, full_grid):
    num_gpus = 32 if full_grid else 16
    total_context = 128 * 1024 if full_grid else 64 * 1024
    result = benchmark.pedantic(
        lambda: table3_cost_distribution.run(
            num_gpus=num_gpus, total_context=total_context
        ),
        rounds=1,
        iterations=1,
    )
    printed_results.append(result.to_text())
    balanced = result.extra["Balanced"]
    skewed = result.extra["Skewed"]
    # The paper's observations: backward exceeds forward, attention dominates
    # the skewed batch, and remapping / partitioning overheads are negligible
    # compared to the end-to-end cost.
    assert balanced["Backward"][1] > balanced["Forward"][0]
    assert skewed["Forward Quadratic Attention"][1] > 0
    assert balanced["Forward Remapping Layer"][1] < balanced["Forward"][1] * 0.2
    assert balanced["Forward Sequence Partition"][1] < balanced["Forward"][1]
