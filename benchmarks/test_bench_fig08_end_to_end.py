"""Benchmark regenerating Fig. 8 (end-to-end throughput grid).

The default run sweeps the smallest cell of every model family on all three
datasets; pass ``--full-grid`` to regenerate the paper's complete 12-cell grid
(several minutes).
"""

from repro.experiments import fig08_end_to_end


def test_bench_fig08_end_to_end(benchmark, printed_results, full_grid):
    result = benchmark.pedantic(
        lambda: fig08_end_to_end.run(full_grid=full_grid, num_steps=1),
        rounds=1,
        iterations=1,
    )
    printed_results.append(result.to_text())
    zeppelin_speedups = result.column("zeppelin_speedup")
    te_speedups = result.column("te_cp_speedup")
    # TE CP is the 1x baseline of every cell; Zeppelin wins every cell with the
    # paper-scale margin (average 2.80x in the paper).
    assert all(abs(s - 1.0) < 1e-6 for s in te_speedups)
    assert all(s > 1.3 for s in zeppelin_speedups)
    assert sum(zeppelin_speedups) / len(zeppelin_speedups) > 2.0
    for row in result.rows:
        te, llama, hybrid, zeppelin = row[-4:]
        assert zeppelin >= max(llama, hybrid)
