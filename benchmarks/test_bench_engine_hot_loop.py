"""Benchmark of the simulation engine's hot loop at cluster scale.

Builds a 512-rank plan shaped like one context-parallel layer — per-rank
attention compute, fanned-out inter-node transfers contending for NICs shared
by two GPUs, and a per-rank reduction — then times:

* the *cold* path: compiling the plan (resource interning, CSR adjacency)
  plus one simulation, and
* the *warm* path: re-simulating with the :class:`CompiledPlan` cached on the
  plan, the case sweeps and resilience iterations hit.

The frozen pre-refactor engine (:mod:`repro.sim._reference`) runs the same
plan under identical (exact) drain semantics, so the benchmark doubles as a
regression guard: results must stay bit-identical, and warm events/sec must
stay at least ``MIN_SPEEDUP`` ahead of the reference.  CI runs this file as a
perf smoke step and prints the events/sec table in the job log.
"""

import time

from repro.core.plan import ExecutionPlan, TaskKind
from repro.sim._reference import ReferenceSimulator
from repro.sim.engine import Simulator

NUM_RANKS = 512
ROUNDS = 3
FANOUT = 4
GPUS_PER_NIC = 2

# The refactor's floor: warm re-simulation must beat the pre-refactor engine
# by at least this factor on the contended cluster-scale plan (measured ~30x
# on the reference hardware; 3x leaves headroom for slow CI machines).
MIN_SPEEDUP = 3.0

# Generous wall-time budget for one warm simulation, so a catastrophic engine
# regression fails loudly even if the reference comparison is skipped.
WARM_BUDGET_S = 10.0


def _build_cluster_scale_plan() -> ExecutionPlan:
    """One layer at 512 ranks: compute -> fanned-out NIC transfers -> reduce."""
    plan = ExecutionPlan()
    last = [None] * NUM_RANKS
    for rnd in range(ROUNDS):
        for rank in range(NUM_RANKS):
            deps = [last[rank]] if last[rank] is not None else []
            compute = plan.add(
                f"attn:{rnd}:{rank}",
                TaskKind.ATTENTION,
                0.001 + (rank % 7) * 1.3e-4 + rnd * 1e-5,
                (f"compute:{rank}",),
                deps=deps,
                rank=rank,
                priority=2,
            )
            sends = []
            for k in range(FANOUT):
                peer = (rank + (rnd * FANOUT + k) * 37 + 1) % NUM_RANKS
                sends.append(
                    plan.add(
                        f"send:{rnd}:{rank}:{peer}",
                        TaskKind.INTER_COMM,
                        0.0004 + ((rank + k) % 5) * 7e-5,
                        (
                            f"nic:{rank // GPUS_PER_NIC}:tx",
                            f"nic:{peer // GPUS_PER_NIC}:rx",
                        ),
                        deps=[compute],
                        rank=rank,
                        priority=k % 2,
                    )
                )
            last[rank] = plan.add(
                f"reduce:{rnd}:{rank}",
                TaskKind.LINEAR,
                0.0008 + (rank % 3) * 1e-4,
                (f"compute:{rank}",),
                deps=sends,
                rank=rank,
                priority=3,
            )
    return plan


def _time(fn, repeats=3):
    """Best-of-``repeats`` wall time of ``fn()`` plus its last return value."""
    best = float("inf")
    value = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - t0)
    return best, value


def test_bench_engine_hot_loop(benchmark, printed_results):
    plan = _build_cluster_scale_plan()
    n = plan.num_tasks
    sim = Simulator(record_trace=False)

    # Cold: compile (interning + CSR flattening) plus the first simulation.
    plan._compiled = None
    compile_s, compiled = _time(lambda: plan.compiled(), repeats=1)
    cold_s, result = _time(lambda: sim.run(plan), repeats=1)
    assert compiled is plan.compiled()

    # Warm: the cached-compile path every re-simulation takes (this is what
    # the pytest-benchmark harness records).
    benchmark.pedantic(lambda: sim.run(plan), rounds=3, iterations=1)
    warm_s, warm_result = _time(lambda: sim.run(plan))
    assert warm_s < WARM_BUDGET_S

    # The frozen pre-refactor engine on the same plan, same drain semantics:
    # results must be bit-identical and the hot loop must be MIN_SPEEDUP ahead.
    reference = ReferenceSimulator(record_trace=False, exact_drain=True)
    ref_s, ref_result = _time(lambda: reference.run(plan), repeats=1)
    assert warm_result.makespan_s == ref_result.makespan_s
    assert warm_result.start_times == ref_result.start_times
    assert warm_result.end_times == ref_result.end_times
    assert result.makespan_s == warm_result.makespan_s

    speedup = ref_s / warm_s
    assert speedup >= MIN_SPEEDUP, (
        f"hot-loop regression: warm {n / warm_s:,.0f} events/s is only "
        f"{speedup:.1f}x the reference engine's {n / ref_s:,.0f} events/s"
    )

    printed_results.append(
        "\n".join(
            [
                "Engine hot loop (512-rank contended plan, "
                f"{n} tasks, makespan {warm_result.makespan_s * 1e3:.2f} ms)",
                f"  compile (cold)        : {compile_s * 1e3:9.2f} ms",
                f"  simulate (cold)       : {cold_s * 1e3:9.2f} ms "
                f"({n / cold_s:,.0f} events/s)",
                f"  simulate (warm)       : {warm_s * 1e3:9.2f} ms "
                f"({n / warm_s:,.0f} events/s)",
                f"  pre-refactor reference: {ref_s * 1e3:9.2f} ms "
                f"({n / ref_s:,.0f} events/s)",
                f"  warm speedup          : {speedup:.1f}x (floor {MIN_SPEEDUP}x)",
            ]
        )
    )
