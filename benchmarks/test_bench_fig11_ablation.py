"""Benchmark regenerating Fig. 11 (component ablation)."""

from repro.experiments import fig11_ablation


def test_bench_fig11_ablation(benchmark, printed_results):
    result = benchmark.pedantic(
        lambda: fig11_ablation.run(num_steps=1),
        rounds=1,
        iterations=1,
    )
    printed_results.append(result.to_text())
    for dataset in ("arxiv", "github", "prolong64k"):
        speedups = result.extra[dataset]
        # Routing alone and the attention engine alone each beat the baseline;
        # combining them is at least as good as the better of the two (within
        # tolerance); the remapping layer does not regress the full system.
        assert speedups["w/ Routing"] > 1.05
        assert speedups["w/ Attn Eng"] > 1.05
        combined = speedups["w/ Routing & Attn Eng"]
        assert combined >= max(speedups["w/ Routing"], speedups["w/ Attn Eng"]) * 0.9
        assert speedups["w/ All"] >= combined * 0.95
