"""Benchmark regenerating Fig. 13 (goodput under faults and recovery policies)."""

from repro.experiments import fig13_resilience


def test_bench_fig13_resilience(benchmark, printed_results):
    result = benchmark.pedantic(
        lambda: fig13_resilience.run(num_steps=1),
        rounds=1,
        iterations=1,
    )
    printed_results.append(result.to_text())

    strategies = fig13_resilience.DEFAULT_STRATEGIES
    mttf_values = fig13_resilience.DEFAULT_MTTF_S
    harshest = min(m for m in mttf_values if m is not None)
    for strategy in strategies:
        healthy = result.extra[(None, "elastic", strategy)]
        faulty_elastic = result.extra[(harshest, "elastic", strategy)]
        faulty_ckpt = result.extra[(harshest, "checkpoint_restart", strategy)]
        # No failures injected -> no recoveries, full workload completes.
        assert healthy["restart_count"] == 0
        assert healthy["completed_iterations"] == healthy["num_iterations"]
        # Failures cost goodput under either policy.
        assert faulty_elastic["goodput_tokens_per_second"] <= healthy["goodput_tokens_per_second"]
        assert faulty_ckpt["goodput_fraction"] < healthy["goodput_fraction"]
        # Elastic re-partition degrades gracefully; checkpoint-restart pays
        # recomputation + restart downtime (the headline of the experiment).
        assert (
            faulty_elastic["goodput_tokens_per_second"]
            > faulty_ckpt["goodput_tokens_per_second"]
        )
    # Zeppelin's scheduling advantage survives fault injection.
    zeppelin = result.extra[(None, "elastic", "zeppelin")]
    te_cp = result.extra[(None, "elastic", "te_cp")]
    assert zeppelin["goodput_tokens_per_second"] > te_cp["goodput_tokens_per_second"]
