"""Setup shim for environments without the `wheel` package.

The project is fully described by ``pyproject.toml``; this file only enables
legacy ``pip install -e .`` (setup.py develop) on interpreters whose setuptools
cannot build PEP 660 editable wheels offline.
"""

from setuptools import setup

setup()
